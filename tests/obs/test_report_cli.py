"""``repro-report``: trajectory tables, regression flags, comparisons."""

import json

from repro.obs import ledger
from repro.obs.report_cli import analyze, main, render


def _rec(workload="wordcount", backend="fast", wall_s=0.01,
         sim_cycles=1000.0, ts=1000.0, **kw):
    rec = {
        "schema": 1, "ts": ts, "workload": workload, "mode": "SIO",
        "strategy": "TR", "engine": "framework", "backend": backend,
        "workers": None, "streamed": False, "records_in": 100,
        "input_digest": "aa" * 8, "output_records": 50,
        "intermediate_records": 100, "sim_cycles": sim_cycles,
        "wall_s": wall_s, "kernel_digest": "bb" * 8,
        "analysis_cache_hit_rate": None, "check_findings": None,
        "straggler_skew": None,
    }
    rec.update(kw)
    return rec


class TestAnalyze:
    def test_groups_by_workload_and_backend(self):
        recs = [_rec(backend="fast"), _rec(backend="sim"),
                _rec(workload="kmeans")]
        out = analyze(recs)
        keys = {(g["workload"], g["backend"]) for g in out["groups"]}
        assert keys == {("wordcount", "fast"), ("wordcount", "sim"),
                        ("kmeans", "fast")}

    def test_no_regression_on_stable_history(self):
        recs = [_rec(wall_s=0.01, ts=i) for i in range(6)]
        out = analyze(recs)
        assert out["groups"][0]["regression"] is None

    def test_wall_regression_flagged_beyond_threshold(self):
        recs = [_rec(wall_s=0.01, ts=i) for i in range(5)]
        recs.append(_rec(wall_s=0.02, ts=9))
        out = analyze(recs, threshold=0.25)
        reg = out["groups"][0]["regression"]
        assert reg is not None
        assert reg["baseline_wall_s"] == 0.01
        assert reg["wall_ratio"] == 2.0
        assert any("wall" in f for f in reg["flags"])

    def test_regression_compares_same_input_only(self):
        """A slower run over a *different* input is not a regression."""
        recs = [_rec(wall_s=0.01, ts=i) for i in range(5)]
        recs.append(_rec(wall_s=10.0, ts=9, input_digest="cc" * 8))
        assert analyze(recs)["groups"][0]["regression"] is None

    def test_cycle_drift_flagged(self):
        recs = [_rec(sim_cycles=1000.0, ts=1),
                _rec(sim_cycles=1001.0, ts=2)]
        reg = analyze(recs)["groups"][0]["regression"]
        assert reg is not None
        assert any("cycles" in f for f in reg["flags"])

    def test_backend_comparison_needs_shared_input(self):
        recs = [_rec(backend="sim", wall_s=0.2),
                _rec(backend="fast", wall_s=0.01)]
        out = analyze(recs)
        (comp,) = out["comparison"]
        assert comp["workload"] == "wordcount"
        assert comp["backends"]["sim"]["speedup_vs_slowest"] == 1.0
        assert comp["backends"]["fast"]["speedup_vs_slowest"] == 20.0
        # Different inputs -> no comparison.
        recs[1]["input_digest"] = "cc" * 8
        assert analyze(recs)["comparison"] == []

    def test_empty(self):
        out = analyze([])
        assert out["records"] == 0
        assert out["groups"] == []
        assert "empty" in render(out)


class TestRender:
    def test_trajectory_table_mentions_group_and_runs(self):
        recs = [_rec(wall_s=0.0123, ts=1000.0)]
        text = render(analyze(recs))
        assert "wordcount" in text
        assert "fast" in text
        assert "0.0123" in text

    def test_regression_line_rendered(self):
        recs = [_rec(wall_s=0.01, ts=1), _rec(wall_s=0.05, ts=2)]
        assert "REGRESSION" in render(analyze(recs))


class TestMain:
    def _write(self, tmp_path, recs):
        path = tmp_path / "runs.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in recs))
        return str(path)

    def test_reads_default_ledger_from_env(self, monkeypatch, tmp_path,
                                           capsys):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        ledger.append_record(_rec())
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "wordcount" in out

    def test_explicit_ledger_and_filters(self, tmp_path, capsys):
        path = self._write(tmp_path, [_rec(), _rec(workload="kmeans")])
        assert main(["--ledger", path, "--workload", "kmeans"]) == 0
        out = capsys.readouterr().out
        assert "kmeans" in out
        assert "wordcount" not in out

    def test_json_output(self, tmp_path, capsys):
        path = self._write(tmp_path, [_rec()])
        assert main(["--ledger", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["records"] == 1
        assert doc["ledger"] == path

    def test_strict_exit_code_on_regression(self, tmp_path, capsys):
        stable = [_rec(wall_s=0.01, ts=i) for i in range(5)]
        path = self._write(tmp_path, stable + [_rec(wall_s=0.05, ts=9)])
        assert main(["--ledger", path, "--strict"]) == 1
        assert main(["--ledger", path]) == 0

    def test_empty_ledger_is_fine(self, tmp_path, capsys):
        assert main(["--ledger", str(tmp_path / "absent.jsonl")]) == 0
        assert "empty" in capsys.readouterr().out
