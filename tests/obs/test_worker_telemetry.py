"""Cross-process worker telemetry: shard profiles, merge, stragglers.

Covers the satellite checklist: every sharded phase yields one track
per shard in the Chrome export, worker ids are stable across runs,
the straggler summary computes the documented max-vs-median skew on a
hand-built fixture, and ``JobResult`` carries both the raw profiles
and the summary.
"""

import json

from repro.backend import ParallelBackend
from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.obs import Tracer, to_chrome_trace, write_jsonl
from repro.obs.exporters import WORKER_PID
from repro.obs.telemetry import (
    PhaseImbalance,
    ShardProfile,
    summarize_workers,
)
from repro.workloads import WordCount

WORKERS = 2


def _parallel_run(tracer=None):
    wc = WordCount()
    inp = wc.generate("small", seed=0)
    backend = ParallelBackend(workers=WORKERS, min_records=0)
    # Pin the memory store: these tests assert its reduce sharding
    # shape (one contiguous key range per worker), which the spill
    # store's chunk-streamed reduce legitimately changes — and the
    # suite also runs under REPRO_STORE=spill.
    res = run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                  strategy=ReduceStrategy.TR,
                  config=DeviceConfig.small(1), tracer=tracer,
                  backend=backend, store="memory")
    return res


def _profile(phase, shard, start, end, **kw):
    defaults = dict(pid=1000 + shard, records_in=10, records_out=10)
    defaults.update(kw)
    return ShardProfile(phase=phase, shard=shard, start_ns=start,
                        end_ns=end, **defaults)


class TestSummarizeWorkers:
    def test_empty_is_none(self):
        assert summarize_workers([]) is None

    def test_skew_on_hand_built_fixture(self):
        """Three map shards: 10ms, 10ms, 30ms -> median 10ms, skew 3."""
        ms = 1_000_000
        profiles = [
            _profile("map", 0, 0, 10 * ms),
            _profile("map", 1, 0, 10 * ms),
            _profile("map", 2, 0, 30 * ms),
        ]
        summary = summarize_workers(profiles)
        ph = summary.phase("map")
        assert isinstance(ph, PhaseImbalance)
        assert ph.shards == 3
        assert ph.max_ns == 30 * ms
        assert ph.median_ns == 10 * ms
        assert ph.slowest_shard == 2
        assert ph.skew == 3.0
        assert summary.max_skew == 3.0

    def test_phases_summarised_independently(self):
        profiles = [
            _profile("map", 0, 0, 100),
            _profile("map", 1, 0, 100),
            _profile("reduce", 0, 0, 10),
            _profile("reduce", 1, 0, 10),
            _profile("reduce", 2, 0, 40),
        ]
        summary = summarize_workers(profiles)
        assert summary.phase("map").skew == 1.0
        assert summary.phase("reduce").skew == 4.0

    def test_render_flags_straggler(self):
        ms = 1_000_000
        summary = summarize_workers([
            _profile("map", 0, 0, 10 * ms),
            _profile("map", 1, 0, 10 * ms),
            _profile("map", 2, 0, 30 * ms),
        ])
        text = summary.render()
        assert "straggler" in text
        assert "map" in text

    def test_balanced_render_has_no_straggler_flag(self):
        summary = summarize_workers([
            _profile("map", 0, 0, 100),
            _profile("map", 1, 0, 100),
        ])
        assert "straggler" not in summary.render()


class TestParallelRunTelemetry:
    def test_job_result_carries_profiles_and_summary(self):
        res = _parallel_run()
        assert res.worker_profiles
        phases = {p.phase for p in res.worker_profiles}
        assert phases == {"map", "reduce"}
        for phase in phases:
            shards = sorted(p.shard for p in res.worker_profiles
                            if p.phase == phase)
            assert shards == list(range(WORKERS))
        assert res.straggler is not None
        assert res.straggler.max_skew >= 1.0

    def test_profiles_count_records(self):
        res = _parallel_run()
        map_in = sum(p.records_in for p in res.worker_profiles
                     if p.phase == "map")
        wc = WordCount()
        assert map_in == len(wc.generate("small", seed=0))

    def test_worker_ids_stable_across_runs(self):
        a = _parallel_run()
        b = _parallel_run()
        key = lambda r: sorted((p.phase, p.shard, p.records_in)
                               for p in r.worker_profiles)
        assert key(a) == key(b)

    def test_chrome_trace_has_one_track_per_worker(self):
        tr = Tracer(wall_clock=True, kernel_detail=False)
        _parallel_run(tracer=tr)
        doc = to_chrome_trace(tr)
        meta = {e["tid"]: e["args"]["name"]
                for e in doc["traceEvents"]
                if e["ph"] == "M" and e["pid"] == WORKER_PID
                and e["name"] == "thread_name"}
        assert meta == {w + 1: f"worker {w}" for w in range(WORKERS)}
        lanes = {e["tid"] for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == WORKER_PID}
        assert lanes == set(range(1, WORKERS + 1))
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X" and ev["pid"] == WORKER_PID:
                assert ev["dur"] >= 0
                assert ev["args"]["worker"] == ev["tid"] - 1

    def test_jsonl_has_worker_records(self, tmp_path):
        tr = Tracer(wall_clock=True, kernel_detail=False)
        _parallel_run(tracer=tr)
        path = tmp_path / "ev.jsonl"
        write_jsonl(tr, str(path))
        workers = [json.loads(line)
                   for line in path.read_text().splitlines()
                   if json.loads(line)["type"] == "worker"]
        assert {r["worker"] for r in workers} == set(range(WORKERS))
        for r in workers:
            assert r["wall_end_ns"] >= r["wall_start_ns"]

    def test_sim_tracer_untouched_by_telemetry_types(self):
        """A sim-backend trace has no worker events at all."""
        tr = Tracer(kernel_detail=False)
        wc = WordCount()
        inp = wc.generate("small", seed=0)
        run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                strategy=ReduceStrategy.TR,
                config=DeviceConfig.small(1), tracer=tr)
        assert tr.worker_events == []
