"""End-to-end ``repro-trace`` CLI: artefacts, determinism, baselines."""

import json

import pytest

from repro.obs.cli import main, resolve_workload
from repro.workloads import KMeans, WordCount

# backend pinned: byte-stable traces are the sim's contract — dist/
# parallel worker spans carry wall-clock stamps and pids.
ARGS = ["wordcount", "--mode", "SIO", "--strategy", "TR",
        "--size", "small", "--mps", "1", "--quiet", "--backend", "sim"]


class TestResolveWorkload:
    def test_accepts_code_classname_and_title(self):
        assert isinstance(resolve_workload("WC"), WordCount)
        assert isinstance(resolve_workload("WordCount"), WordCount)
        assert isinstance(resolve_workload("word count"), WordCount)
        assert isinstance(resolve_workload("kmeans"), KMeans)

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            resolve_workload("nope")


class TestCliRun:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace")
        assert main(ARGS + ["--out", str(out)]) == 0
        return out

    def test_writes_all_artefacts(self, out_dir):
        for name in ("trace.json", "events.jsonl", "metrics.json"):
            assert (out_dir / name).exists(), name

    def test_trace_is_valid_and_nested(self, out_dir):
        doc = json.loads((out_dir / "trace.json").read_text())
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == 0]
        assert spans[0]["name"] == "job:wordcount"
        names = {e["name"] for e in spans}
        assert {"map", "map_kernel", "reduce", "reduce_kernel"} <= names
        job = spans[0]
        assert all(e["ts"] + e["dur"] <= job["ts"] + job["dur"]
                   for e in spans)

    def test_metrics_header(self, out_dir):
        doc = json.loads((out_dir / "metrics.json").read_text())
        assert doc["schema"] == 1
        assert doc["workload"] == "WC"
        assert doc["mode"] == "SIO"
        assert doc["strategy"] == "TR"
        assert doc["counters"] and doc["gauges"]

    def test_metrics_byte_stable_across_runs(self, out_dir, tmp_path):
        assert main(ARGS + ["--out", str(tmp_path)]) == 0
        assert (tmp_path / "metrics.json").read_bytes() == \
            (out_dir / "metrics.json").read_bytes()
        assert (tmp_path / "trace.json").read_bytes() == \
            (out_dir / "trace.json").read_bytes()

    def test_baseline_self_diff_is_clean(self, out_dir, tmp_path, capsys):
        rc = main(ARGS + ["--out", str(tmp_path),
                          "--baseline", str(out_dir / "metrics.json")])
        assert rc == 0
        assert "no metric changes" in capsys.readouterr().out

    def test_baseline_detects_regression(self, out_dir, tmp_path, capsys):
        doc = json.loads((out_dir / "metrics.json").read_text())
        doc["gauges"]["job.total_cycles"] *= 2
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc))
        rc = main(ARGS + ["--out", str(tmp_path / "o"),
                          "--baseline", str(baseline)])
        assert rc == 1
        assert "job.total_cycles" in capsys.readouterr().out

    def test_blocks_none_disables_device_detail(self, tmp_path):
        assert main(ARGS + ["--blocks", "none",
                            "--out", str(tmp_path)]) == 0
        doc = json.loads((tmp_path / "trace.json").read_text())
        assert not any(e.get("cat") == "device"
                       for e in doc["traceEvents"])
        # Host spans are still traced.
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
