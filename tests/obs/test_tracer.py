"""Tracer core: clock, span nesting, kernel ingestion, null tracer."""

import pytest

from repro.gpu.stats import KernelStats
from repro.gpu.timeline import Timeline
from repro.obs import NULL_TRACER, NullTracer, Tracer


class TestClockAndSpans:
    def test_nesting_and_clock(self):
        tr = Tracer()
        with tr.span("job", workload="wc"):
            with tr.span("io_in"):
                tr.advance(100)
            with tr.span("map"):
                tr.advance(250)
        assert tr.now == 350
        root = tr.roots[0]
        assert root.name == "job"
        assert (root.start, root.end) == (0, 350)
        assert [c.name for c in root.children] == ["io_in", "map"]
        io_in, mp = root.children
        assert (io_in.start, io_in.end) == (0, 100)
        assert (mp.start, mp.end) == (100, 350)
        assert io_in.parent is root and io_in.depth == 1

    def test_children_contained_in_parent(self):
        tr = Tracer()
        with tr.span("a"):
            tr.advance(10)
            with tr.span("b"):
                tr.advance(5)
                with tr.span("c"):
                    tr.advance(1)
            tr.advance(4)
        for sp in tr.spans:
            if sp.parent is not None:
                assert sp.start >= sp.parent.start
                assert sp.end <= sp.parent.end
                assert sp.depth == sp.parent.depth + 1

    def test_none_attrs_filtered(self):
        tr = Tracer()
        with tr.span("s", keep=1, drop=None) as sp:
            pass
        assert sp.attrs == {"keep": 1}

    def test_zero_duration_span(self):
        tr = Tracer()
        tr.advance(50)
        with tr.span("empty") as sp:
            pass
        assert sp.duration == 0.0
        assert sp.start == sp.end == 50

    def test_negative_advance_ignored(self):
        tr = Tracer()
        tr.advance(10)
        tr.advance(-5)
        assert tr.now == 10

    def test_instants_and_find(self):
        tr = Tracer()
        with tr.span("loop"):
            tr.advance(7)
            tr.instant("converged", iteration=2)
            with tr.span("it"):
                pass
            with tr.span("it"):
                pass
        assert len(tr.find("it")) == 2
        ev = tr.instants[0]
        assert (ev.name, ev.time, ev.attrs) == (
            "converged", 7, {"iteration": 2})


class TestKernelIngestion:
    def _stats(self, cycles=1000.0):
        st = KernelStats(cycles=cycles, instructions=42,
                         grid_blocks=2, threads_per_block=64)
        st.count("flushes", 3)
        return st

    def test_kernel_span_advances_clock_and_carries_attrs(self):
        tr = Tracer()
        tr.advance(500)
        sp = tr.kernel("map_kernel", self._stats())
        assert tr.now == 1500
        assert (sp.start, sp.end) == (500, 1500)
        assert sp.attrs["cycles"] == 1000.0
        assert sp.attrs["grid_blocks"] == 2
        assert sp.attrs["flushes"] == 3

    def test_timeline_events_offset_to_job_time(self):
        tr = Tracer(coalesce_polls=False)
        tr.advance(100)
        tl = tr.make_timeline()
        tl.record(0, 0, "compute", 10.0, 20.0)
        tl.record(0, 1, "global_read", 0.0, 40.0)
        tr.kernel("k", self._stats(), timeline=tl)
        evs = sorted(tr.device_events, key=lambda e: (e.block, e.warp))
        assert (evs[0].start, evs[0].end) == (110.0, 120.0)
        assert (evs[1].start, evs[1].end) == (100.0, 140.0)
        assert evs[0].kernel == "k"

    def test_poll_coalescing(self):
        tr = Tracer()
        tl = tr.make_timeline()
        # Three consecutive polls, an intervening compute, two more polls.
        tl.record(0, 0, "poll", 0.0, 4.0)
        tl.record(0, 0, "poll", 4.0, 8.0)
        tl.record(0, 0, "poll", 8.0, 12.0)
        tl.record(0, 0, "compute", 12.0, 16.0)
        tl.record(0, 0, "poll", 16.0, 20.0)
        tl.record(0, 0, "poll", 20.0, 24.0)
        tr.kernel("k", self._stats(), timeline=tl)
        polls = [e for e in tr.device_events if e.category == "poll_wait"]
        assert len(polls) == 2
        assert polls[0].attrs["probes"] == 3
        assert (polls[0].start, polls[0].end) == (0.0, 12.0)
        assert polls[1].attrs["probes"] == 2
        categories = [e.category for e in tr.device_events]
        assert "poll" not in categories

    def test_marks_become_device_events(self):
        tr = Tracer()
        tr.advance(10)
        tl = tr.make_timeline()
        tl.mark(0, 1, "overflow_flush", 25.0, {"epoch": 0})
        tr.kernel("k", self._stats(), timeline=tl)
        marks = [e for e in tr.device_events if e.category == "mark"]
        assert len(marks) == 1
        m = marks[0]
        assert m.name == "overflow_flush"
        assert m.start == m.end == 35.0
        assert m.attrs == {"epoch": 0}

    def test_make_timeline_respects_detail_flag(self):
        assert Tracer(kernel_detail=False).make_timeline() is None
        tl = Tracer(trace_blocks=frozenset({0, 3})).make_timeline()
        assert isinstance(tl, Timeline)
        assert tl.blocks == {0, 3}


class TestNullTracer:
    def test_all_methods_noop(self):
        nt = NullTracer()
        with nt.span("x", a=1) as sp:
            assert sp is None
        nt.advance(100)
        assert nt.now == 0.0
        nt.instant("y")
        assert nt.make_timeline() is None
        assert nt.kernel("k", KernelStats(cycles=10)) is None

    def test_shared_singleton(self):
        assert isinstance(NULL_TRACER, NullTracer)

    def test_run_job_without_tracer_unchanged(self):
        """Passing tracer=None must not perturb job timings."""
        from repro.framework import MemoryMode, ReduceStrategy
        from repro.framework.job import run_job
        from repro.gpu import DeviceConfig
        from repro.workloads import WordCount

        wc = WordCount()
        inp = wc.generate("small", seed=0)
        kw = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                  config=DeviceConfig.small(1))
        plain = run_job(wc.spec(), inp, **kw)
        traced = run_job(wc.spec(), inp, tracer=Tracer(), **kw)
        assert plain.total_cycles == pytest.approx(traced.total_cycles)
        assert plain.timings.as_dict() == traced.timings.as_dict()
