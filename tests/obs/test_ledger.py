"""The persistent run ledger: append-only JSONL, env gating, safety."""

import json
import multiprocessing as mp
import os

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.obs import ledger
from repro.workloads import WordCount


def _run(backend="fast"):
    wc = WordCount()
    inp = wc.generate("small", seed=0)
    return run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                   strategy=ReduceStrategy.TR,
                   config=DeviceConfig.small(1), backend=backend)


class TestEnvGating:
    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ledger.LEDGER_ENV, raising=False)
        assert ledger.ledger_enabled()

    def test_opt_out_values(self, monkeypatch):
        for value in ("0", "off", "false", "no", "OFF", " False "):
            monkeypatch.setenv(ledger.LEDGER_ENV, value)
            assert not ledger.ledger_enabled()
        monkeypatch.setenv(ledger.LEDGER_ENV, "1")
        assert ledger.ledger_enabled()

    def test_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        assert ledger.ledger_path() == str(tmp_path / "runs.jsonl")


class TestRecording:
    def test_every_run_appends_one_record(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        _run()
        _run()
        records = ledger.read_ledger()
        assert len(records) == 2

    def test_record_fields(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        _run()
        (rec,) = ledger.read_ledger()
        assert rec["schema"] == ledger.SCHEMA
        assert rec["workload"] == "wordcount"
        assert rec["backend"] == "fast"
        assert rec["mode"] == "SIO"
        assert rec["strategy"] == "TR"
        assert rec["streamed"] is False
        assert rec["records_in"] > 0
        assert rec["output_records"] > 0
        assert len(rec["input_digest"]) == 16
        assert len(rec["kernel_digest"]) == 16
        assert rec["sim_cycles"] > 0
        assert rec["wall_s"] > 0

    def test_same_input_same_digest(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        _run()
        _run()
        a, b = ledger.read_ledger()
        assert a["input_digest"] == b["input_digest"]
        assert a["kernel_digest"] == b["kernel_digest"]

    def test_sim_and_fast_share_input_digest(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        _run(backend="sim")
        _run(backend="fast")
        sim_rec, fast_rec = ledger.read_ledger()
        assert sim_rec["input_digest"] == fast_rec["input_digest"]
        assert sim_rec["backend"] == "sim"
        assert fast_rec["backend"] == "fast"

    def test_opt_out_suppresses_recording(self, monkeypatch, tmp_path):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(ledger.LEDGER_ENV, "0")
        _run()
        assert ledger.read_ledger() == []
        assert not os.path.exists(ledger.ledger_path())

    def test_unwritable_dir_never_fails_the_job(self, monkeypatch):
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV,
                           "/proc/definitely/not/writable")
        res = _run()
        assert len(res.output) > 0


class TestReading:
    def test_absent_file_reads_empty(self, tmp_path):
        assert ledger.read_ledger(str(tmp_path / "nope.jsonl")) == []

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        good = {"schema": 1, "workload": "wc", "backend": "fast"}
        path.write_text(
            json.dumps(good) + "\n"
            + '{"torn": tru\n'          # torn write
            + "\n"                       # blank
            + '"just a string"\n'        # valid JSON, not a record
            + json.dumps(good) + "\n"
        )
        assert ledger.read_ledger(str(path)) == [good, good]

    def test_group_runs_preserves_order(self):
        recs = [
            {"workload": "wc", "backend": "fast", "n": 1},
            {"workload": "wc", "backend": "sim", "n": 2},
            {"workload": "wc", "backend": "fast", "n": 3},
        ]
        groups = ledger.group_runs(recs)
        assert [r["n"] for r in groups[("wc", "fast")]] == [1, 3]
        assert [r["n"] for r in groups[("wc", "sim")]] == [2]


def _append_batch(task):
    path, worker, count = task
    for i in range(count):
        ledger.append_record({"worker": worker, "i": i}, path)
    return worker


class TestConcurrency:
    def test_parallel_appends_never_tear_lines(self, tmp_path):
        """Two processes interleave whole lines, never bytes — every
        record written is read back intact."""
        path = str(tmp_path / "runs.jsonl")
        count = 300
        with mp.get_context("fork").Pool(2) as pool:
            pool.map(_append_batch, [(path, 0, count), (path, 1, count)])
        records = ledger.read_ledger(path)
        assert len(records) == 2 * count
        for worker in (0, 1):
            seen = [r["i"] for r in records if r["worker"] == worker]
            assert seen == sorted(seen)
            assert len(seen) == count

    def test_two_parallel_jobs_both_land(self, monkeypatch, tmp_path):
        """End-to-end: two concurrently executing jobs each append."""
        monkeypatch.setenv(ledger.LEDGER_DIR_ENV, str(tmp_path))
        with mp.get_context("fork").Pool(2) as pool:
            a = pool.apply_async(_run)
            b = pool.apply_async(_run)
            a.get()
            b.get()
        records = ledger.read_ledger()
        assert len(records) == 2
        assert all(r["workload"] == "wordcount" for r in records)
