"""Tracer hooks in the Mars baseline and the streamed-job pipeline."""

import pytest

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.streaming import run_streamed_job
from repro.gpu import DeviceConfig
from repro.mars.framework import run_mars_job
from repro.obs import Tracer
from repro.workloads import WordCount

CFG = DeviceConfig.small(1)


def wc_input():
    wc = WordCount()
    return wc.spec(), wc.generate("small", seed=0)


class TestMarsTracing:
    def test_two_pass_kernels_become_spans(self):
        # backend pinned: the two-pass kernel span tree is sim-only.
        spec, inp = wc_input()
        tr = Tracer(kernel_detail=False)
        run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                     config=CFG, tracer=tr, backend="sim")
        root = tr.roots[0]
        assert root.name == "job:wordcount"
        assert root.attrs["mode"] == "Mars"
        phases = [c.name for c in root.children]
        assert phases == ["io_in", "map", "shuffle", "reduce", "io_out"]
        map_children = [c.name for c in root.children[1].children]
        assert map_children == [
            "map_count_kernel", "prefix_scan", "map_real_kernel"]
        red_children = [c.name for c in root.children[3].children]
        assert red_children == [
            "reduce_count_kernel", "prefix_scan", "reduce_real_kernel"]

    def test_clock_matches_job_total(self):
        spec, inp = wc_input()
        tr = Tracer(kernel_detail=False)
        res = run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                           config=CFG, tracer=tr)
        root = tr.roots[0]
        assert root.duration == pytest.approx(res.total_cycles)


class TestStreamedTracing:
    def test_batch_spans(self):
        spec, inp = wc_input()
        tr = Tracer(kernel_detail=False)
        res = run_streamed_job(spec, inp, n_batches=3, overlap=True,
                               mode=MemoryMode.SIO,
                               strategy=ReduceStrategy.TR,
                               config=CFG, tracer=tr, backend="sim")
        root = tr.roots[0]
        stream = root.children[0]
        assert stream.name == "map_stream"
        batch_names = [c.name for c in stream.children]
        assert batch_names == [f"batch[{i}]" for i in range(3)]
        for b in stream.children:
            assert [c.name for c in b.children] == ["upload", "map_kernel"]
        assert stream.attrs["serial_map_io"] == res.serial_map_io
        assert stream.attrs["pipelined_map_io"] == res.pipelined_map_io
        tail = [c.name for c in root.children[1:]]
        assert tail == ["shuffle", "reduce", "io_out"]
