"""Metrics registry, KernelStats absorption, serialisation, diffing."""

from dataclasses import fields

import pytest

from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.job import run_job
from repro.gpu import DeviceConfig
from repro.gpu.stats import KernelStats
from repro.obs import (
    MetricsRegistry,
    diff_metrics,
    flatten_metrics,
    job_metrics_registry,
)
from repro.workloads import WordCount


class TestPrimitives:
    def test_counter_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(7)
        reg.gauge("g").set(9)
        d = reg.as_dict()
        assert d["counters"]["c"] == 5
        assert d["gauges"]["g"] == 9.0

    def test_histogram(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        assert h.summary() == {
            "count": 3, "max": 9.0, "mean": 5.0, "min": 2.0,
            "p50": 4.0, "p90": 9.0, "p99": 9.0, "total": 15.0}

    def test_empty_histogram_summary_is_zeroed(self):
        h = MetricsRegistry().histogram("h")
        assert h.summary() == {
            "count": 0, "max": 0.0, "mean": 0.0, "min": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0, "total": 0.0}

    def test_histogram_percentiles(self):
        h = MetricsRegistry().histogram("h")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 51.0
        assert h.percentile(90) == 90.0
        assert h.percentile(100) == 100.0

    def test_histogram_reservoir_stays_bounded_and_deterministic(self):
        from repro.obs.metrics import _RESERVOIR_CAP

        h1 = MetricsRegistry().histogram("h")
        h2 = MetricsRegistry().histogram("h")
        for v in range(10 * _RESERVOIR_CAP):
            h1.observe(float(v))
            h2.observe(float(v))
        assert len(h1._samples) <= _RESERVOIR_CAP
        assert h1._samples == h2._samples
        assert h1.count == 10 * _RESERVOIR_CAP
        # Percentiles stay close to exact despite decimation.
        assert abs(h1.percentile(50) - 5 * _RESERVOIR_CAP) < _RESERVOIR_CAP * 0.2


class TestAbsorbKernelStats:
    def test_every_numeric_field_lands(self):
        st = KernelStats(cycles=100.0, instructions=7, polls=3)
        st.count("flushes", 2)
        st.stall("atomic", 12.0)
        reg = MetricsRegistry()
        reg.absorb_kernel_stats(st, "kernel.map")
        counters = reg.as_dict()["counters"]
        for f in fields(st):
            if isinstance(getattr(st, f.name), dict):
                continue
            assert f"kernel.map.{f.name}" in counters, f.name
        assert counters["kernel.map.cycles"] == 100.0
        assert counters["kernel.map.extra.flushes"] == 2
        assert counters["kernel.map.stall_cycles.atomic"] == 12.0

    def test_absorb_accumulates(self):
        reg = MetricsRegistry()
        reg.absorb_kernel_stats(KernelStats(cycles=10.0), "k")
        reg.absorb_kernel_stats(KernelStats(cycles=5.0), "k")
        assert reg.as_dict()["counters"]["k.cycles"] == 15.0


class TestJobRegistry:
    @pytest.fixture(scope="class")
    def result(self):
        # backend pinned: derived gauges (bandwidth utilisation,
        # occupancy, stall fractions) come from sim kernel counters.
        wc = WordCount()
        inp = wc.generate("small", seed=0)
        return run_job(wc.spec(), inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.TR,
                       config=DeviceConfig.small(1), backend="sim")

    def test_expected_namespaces(self, result):
        reg = job_metrics_registry(result, DeviceConfig.small(1))
        flat = flatten_metrics(reg.as_dict())
        assert flat["gauges.job.total_cycles"] == result.total_cycles
        for phase in ("io_in", "map", "shuffle", "reduce", "io_out"):
            assert f"gauges.phase.{phase}" in flat
        assert flat["counters.job.output_records"] == len(result.output)
        assert "counters.kernel.map.cycles" in flat
        assert "counters.kernel.reduce.cycles" in flat
        assert "gauges.derived.map.bandwidth_utilisation" in flat
        assert "gauges.derived.reduce.occupancy" in flat
        assert any(k.startswith("gauges.derived.map.stall_fraction.")
                   for k in flat)

    def test_to_json_is_deterministic(self, result):
        cfg = DeviceConfig.small(1)
        a = job_metrics_registry(result, cfg).to_json(extra={"seed": 0})
        b = job_metrics_registry(result, cfg).to_json(extra={"seed": 0})
        assert a == b
        assert a.endswith("\n")

    def test_map_only_job_has_no_reduce_metrics(self):
        wc = WordCount()
        inp = wc.generate("small", seed=0)
        res = run_job(wc.spec(), inp, mode=MemoryMode.SIO, strategy=None,
                      config=DeviceConfig.small(1))
        flat = flatten_metrics(
            job_metrics_registry(res, DeviceConfig.small(1)).as_dict())
        assert "counters.kernel.map.cycles" in flat
        assert not any(".reduce." in k for k in flat)


class TestDiff:
    BASE = {"counters": {"a": 10.0, "gone": 1.0}, "gauges": {"g": 2.0},
            "histograms": {"h": {"count": 1, "total": 5.0}}}

    def test_flatten(self):
        flat = flatten_metrics(self.BASE)
        assert flat["counters.a"] == 10.0
        assert flat["histograms.h.total"] == 5.0

    def test_identical_documents_diff_clean(self):
        assert diff_metrics(self.BASE, self.BASE) == []

    def test_changes_additions_removals(self):
        cur = {"counters": {"a": 11.0, "new": 3.0}, "gauges": {"g": 2.0},
               "histograms": {"h": {"count": 1, "total": 5.0}}}
        deltas = diff_metrics(self.BASE, cur)
        by_name = {d.name: d for d in deltas}
        assert set(by_name) == {"counters.a", "counters.new",
                                "counters.gone"}
        assert by_name["counters.a"].ratio == pytest.approx(1.1)
        assert by_name["counters.new"].baseline is None
        assert by_name["counters.gone"].current is None
        assert "(+10.0%)" in by_name["counters.a"].render()

    def test_tolerance_suppresses_small_changes(self):
        cur = {"counters": {"a": 10.4, "gone": 1.0}, "gauges": {"g": 2.0},
               "histograms": {"h": {"count": 1, "total": 5.0}}}
        assert diff_metrics(self.BASE, cur, rel_tol=0.05) == []
        assert len(diff_metrics(self.BASE, cur, rel_tol=0.01)) == 1
