"""Tests for the atomic unit, memory system, banks and texture cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.atomics import AtomicUnit
from repro.gpu.banks import conflict_degree, strided_conflict_degree
from repro.gpu.interconnect import MemorySystem
from repro.gpu.texture import TextureCache, TextureCoherenceError


class TestAtomicUnit:
    def test_uncontended_atomic_costs_latency_plus_service(self):
        u = AtomicUnit(latency=500, service=24)
        done = u.request(addr=0, t_issue=0.0)
        assert done == pytest.approx(500 + 24)
        assert u.conflicts == 0

    def test_same_address_serialises(self):
        u = AtomicUnit(latency=500, service=24)
        d1 = u.request(0, 0.0)
        d2 = u.request(0, 0.0)
        assert d2 == pytest.approx(d1 + 24)
        assert u.conflicts == 1
        assert u.queue_cycles > 0

    def test_different_addresses_parallel(self):
        u = AtomicUnit(latency=500, service=24)
        d1 = u.request(0, 0.0)
        d2 = u.request(64, 0.0)
        assert d1 == d2
        assert u.conflicts == 0

    def test_contention_grows_linearly(self):
        """N conflicting atomics take ~N * service — the bottleneck
        behind the paper's G-mode Word Count results."""
        u = AtomicUnit(latency=500, service=24)
        last = 0.0
        for _ in range(100):
            last = u.request(0, 0.0)
        assert last == pytest.approx(500 + 100 * 24)

    def test_reset(self):
        u = AtomicUnit()
        u.request(0, 0.0)
        u.reset()
        assert u.ops == 0 and u.conflicts == 0

    @given(st.lists(st.tuples(st.integers(0, 3), st.floats(0, 1e6)), max_size=50))
    def test_completion_monotone_per_address(self, reqs):
        u = AtomicUnit()
        seen: dict[int, float] = {}
        for addr, t in reqs:
            done = u.request(addr, t)
            assert done > t
            if addr in seen:
                assert done > seen[addr]
            seen[addr] = done


class TestMemorySystem:
    def test_idle_read_costs_latency(self):
        m = MemorySystem(latency=500, service=0.5)
        assert m.request_read(0.0, 1, 64) == pytest.approx(500.5)

    def test_write_is_posted(self):
        m = MemorySystem(latency=500, service=0.5)
        done = m.request_write(0.0, 4, 256)
        assert done == pytest.approx(2.0)  # queue admission only

    def test_bandwidth_queueing_under_load(self):
        m = MemorySystem(latency=500, service=1.0)
        m.request_read(0.0, 1000, 64000)
        done = m.request_read(0.0, 1, 64)
        # The second request queues behind 1000 transactions.
        assert done == pytest.approx(1000 + 1 + 500)
        assert m.queue_cycles > 0

    def test_zero_transactions_free(self):
        m = MemorySystem()
        assert m.request_read(7.0, 0, 0) == 7.0

    def test_counters(self):
        m = MemorySystem()
        m.request_read(0.0, 3, 192)
        m.request_write(0.0, 2, 128)
        assert m.transactions == 5
        assert m.bytes_moved == 320
        m.reset()
        assert m.transactions == 0


class TestBanks:
    def test_sequential_words_conflict_free(self):
        assert strided_conflict_degree(1) == 1

    def test_stride_two_is_two_way(self):
        assert strided_conflict_degree(2) == 2

    def test_stride_sixteen_worst_case(self):
        assert strided_conflict_degree(16) == 16

    def test_odd_strides_conflict_free(self):
        for stride in (1, 3, 5, 7, 9, 15):
            assert strided_conflict_degree(stride) == 1

    def test_broadcast_is_free(self):
        assert conflict_degree([128] * 16) == 1

    def test_empty(self):
        assert conflict_degree([]) == 1


class TestTextureCache:
    def test_miss_then_hit(self):
        t = TextureCache(capacity=1024, line_bytes=32, ways=4)
        assert t.access(0, 4) == (0, 1)
        assert t.access(0, 4) == (1, 0)
        assert t.access(4, 4) == (1, 0)  # same line
        assert t.hit_rate == pytest.approx(2 / 3)

    def test_capacity_eviction_lru(self):
        # 1 set x 2 ways: third distinct line evicts the oldest.
        t = TextureCache(capacity=64, line_bytes=32, ways=2)
        t.access(0, 4)
        t.access(32, 4)
        t.access(64, 4)  # evicts line 0
        assert t.access(0, 4) == (0, 1)

    def test_multi_line_access(self):
        t = TextureCache(capacity=1024, line_bytes=32, ways=4)
        hits, misses = t.access(0, 100)  # 4 lines
        assert (hits, misses) == (0, 4)

    def test_coherence_violation_detected(self):
        """Mirrors why the paper cannot run GT-mode BR kernels: the
        texture cache is not coherent with same-kernel global writes."""
        t = TextureCache()
        t.note_global_write(100, 4)
        with pytest.raises(TextureCoherenceError):
            t.access(100, 4)

    def test_non_strict_mode_allows_stale_reads(self):
        t = TextureCache(strict_coherence=False)
        t.note_global_write(100, 4)
        t.access(100, 4)  # no raise

    def test_reset(self):
        t = TextureCache()
        t.access(0, 4)
        t.note_global_write(0, 4)
        t.reset()
        assert t.hits == 0 and t.misses == 0
        t.access(0, 4)  # dirty set cleared: no raise

    def test_zero_size_access(self):
        t = TextureCache()
        assert t.access(0, 0) == (0, 0)
