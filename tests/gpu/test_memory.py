"""Tests for the functional memory state (global + shared)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, OutOfBoundsError
from repro.gpu.memory import ALLOC_ALIGN, GlobalMemory, SharedMemory


class TestGlobalAllocator:
    def test_alloc_returns_aligned_addresses(self):
        g = GlobalMemory()
        a = g.alloc(100)
        b = g.alloc(1)
        assert a % ALLOC_ALIGN == 0
        assert b % ALLOC_ALIGN == 0
        assert b >= a + 100

    def test_labelled_regions(self):
        g = GlobalMemory()
        a = g.alloc(256, label="keys")
        assert g.region("keys") == (a, 256)

    def test_capacity_exhaustion(self):
        g = GlobalMemory(capacity=1024)
        g.alloc(512)
        with pytest.raises(AllocationError):
            g.alloc(1024)

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            GlobalMemory().alloc(-1)

    def test_reset_releases_everything(self):
        g = GlobalMemory()
        g.alloc(1 << 20, label="x")
        g.reset()
        assert g.bytes_allocated == 0
        with pytest.raises(KeyError):
            g.region("x")

    def test_backing_store_grows_lazily(self):
        g = GlobalMemory(capacity=1 << 30)
        addr = g.alloc(1 << 20)
        g.write(addr + (1 << 20) - 4, b"abcd")
        assert g.read(addr + (1 << 20) - 4, 4) == b"abcd"


class TestGlobalAccess:
    def test_round_trip(self):
        g = GlobalMemory()
        a = g.alloc(64)
        g.write(a, b"hello world")
        assert g.read(a, 11) == b"hello world"

    def test_out_of_bounds_read(self):
        g = GlobalMemory()
        g.alloc(64)
        with pytest.raises(OutOfBoundsError):
            g.read(60, 10)

    def test_unallocated_access_fails(self):
        g = GlobalMemory()
        with pytest.raises(OutOfBoundsError):
            g.read(0, 1)

    def test_typed_scalars(self):
        g = GlobalMemory()
        a = g.alloc(16)
        g.write_u32(a, 0xDEADBEEF)
        g.write_i32(a + 4, -42)
        g.write_f32(a + 8, 1.5)
        assert g.read_u32(a) == 0xDEADBEEF
        assert g.read_i32(a + 4) == -42
        assert g.read_f32(a + 8) == 1.5

    def test_u32_wraps_like_hardware(self):
        g = GlobalMemory()
        a = g.alloc(4)
        g.write_u32(a, 0xFFFFFFFF)
        g.atomic_add_u32(a, 2)
        assert g.read_u32(a) == 1

    def test_arrays(self):
        g = GlobalMemory()
        a = g.alloc(40)
        g.write_u32_array(a, np.arange(10, dtype=np.uint32))
        assert list(g.read_u32_array(a, 10)) == list(range(10))
        g.write_f32_array(a, np.linspace(0, 1, 10, dtype=np.float32))
        out = g.read_f32_array(a, 10)
        assert out[0] == 0.0 and out[-1] == 1.0

    def test_view_is_zero_copy(self):
        g = GlobalMemory()
        a = g.alloc(8)
        g.write(a, b"ABCDEFGH")
        v = g.view(a, 8)
        assert bytes(v) == b"ABCDEFGH"

    def test_atomic_add_returns_old(self):
        g = GlobalMemory()
        a = g.alloc(4)
        assert g.atomic_add_u32(a, 5) == 0
        assert g.atomic_add_u32(a, 7) == 5
        assert g.read_u32(a) == 12

    def test_atomic_max_and_cas(self):
        g = GlobalMemory()
        a = g.alloc(4)
        g.write_u32(a, 10)
        assert g.atomic_max_u32(a, 5) == 10
        assert g.read_u32(a) == 10
        assert g.atomic_max_u32(a, 20) == 10
        assert g.read_u32(a) == 20
        assert g.atomic_cas_u32(a, 20, 99) == 20
        assert g.read_u32(a) == 99
        assert g.atomic_cas_u32(a, 20, 7) == 99
        assert g.read_u32(a) == 99

    @given(st.binary(min_size=0, max_size=512), st.integers(0, 100))
    @settings(max_examples=50)
    def test_write_read_roundtrip_property(self, payload, pad):
        g = GlobalMemory()
        a = g.alloc(len(payload) + pad)
        g.write(a, payload)
        assert g.read(a, len(payload)) == payload


class TestSharedMemory:
    def test_size_enforced(self):
        s = SharedMemory(64)
        with pytest.raises(OutOfBoundsError):
            s.write(60, b"hello")

    def test_zero_initialised(self):
        s = SharedMemory(32)
        assert s.read(0, 32) == bytes(32)

    def test_fill(self):
        s = SharedMemory(16)
        s.fill(4, 8, 0xAB)
        assert s.read(4, 8) == b"\xab" * 8
        assert s.read(0, 4) == bytes(4)

    def test_typed_and_atomic(self):
        s = SharedMemory(16)
        s.write_u32(0, 7)
        assert s.atomic_add_u32(0, 3) == 7
        assert s.read_u32(0) == 10
        s.write_f32(4, -2.25)
        assert s.read_f32(4) == -2.25
        s.write_i32(8, -1)
        assert s.read_i32(8) == -1

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SharedMemory(0)
