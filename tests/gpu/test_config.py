"""Tests for device configuration and occupancy rules."""

import pytest

from repro.errors import ConfigError
from repro.gpu import DeviceConfig, WARP_SIZE
from repro.gpu.config import TimingParams


class TestDeviceConfig:
    def test_gtx280_matches_paper_testbed(self):
        cfg = DeviceConfig.gtx280()
        assert cfg.mp_count == 30
        assert cfg.shared_mem_per_mp == 16 * 1024
        assert cfg.registers_per_mp == 16384
        assert cfg.global_mem_bytes == 1 << 30

    def test_small_config_only_changes_mp_count(self):
        cfg = DeviceConfig.small(4)
        ref = DeviceConfig.gtx280()
        assert cfg.mp_count == 4
        assert cfg.shared_mem_per_mp == ref.shared_mem_per_mp
        assert cfg.timing == ref.timing

    def test_with_timing_overrides_one_knob(self):
        cfg = DeviceConfig.gtx280().with_timing(global_latency=700.0)
        assert cfg.timing.global_latency == 700.0
        assert cfg.timing.shared_latency == DeviceConfig.gtx280().timing.shared_latency

    def test_invalid_mp_count_rejected(self):
        with pytest.raises(ConfigError):
            DeviceConfig(mp_count=0)

    def test_max_threads_must_be_warp_multiple(self):
        with pytest.raises(ConfigError):
            DeviceConfig(max_threads_per_block=100)

    def test_global_latency_in_paper_range(self):
        t = DeviceConfig.gtx280().timing
        assert 400 <= t.global_latency <= 700  # Section II-A
        assert t.shared_latency < 100  # "within dozens of cycles"


class TestOccupancy:
    def test_block_slots_limit(self):
        cfg = DeviceConfig.gtx280()
        # Tiny blocks: limited by the 8-blocks-per-MP cap.
        assert cfg.blocks_per_mp(WARP_SIZE, 0) == 8

    def test_thread_limit(self):
        cfg = DeviceConfig.gtx280()
        # 512-thread blocks: 1024 threads/MP allows only 2.
        assert cfg.blocks_per_mp(512, 0) == 2

    def test_shared_memory_limit(self):
        cfg = DeviceConfig.gtx280()
        # 6 KB of smem per block: floor(16/6) = 2 blocks.
        assert cfg.blocks_per_mp(64, 6 * 1024) == 2

    def test_smem_oversubscription_fails(self):
        cfg = DeviceConfig.gtx280()
        assert cfg.blocks_per_mp(64, 17 * 1024) == 0

    def test_register_limit(self):
        cfg = DeviceConfig.gtx280()
        # 64 regs x 256 threads = 16384: exactly one block.
        assert cfg.blocks_per_mp(256, 0, regs_per_thread=64) == 1
        assert cfg.blocks_per_mp(256, 0, regs_per_thread=65) == 0

    def test_too_many_threads_per_block(self):
        cfg = DeviceConfig.gtx280()
        assert cfg.blocks_per_mp(1024, 0) == 0

    def test_threads_must_be_positive(self):
        with pytest.raises(ConfigError):
            DeviceConfig.gtx280().blocks_per_mp(0, 0)


class TestTimingParams:
    def test_cycles_to_ms(self):
        t = TimingParams(clock_ghz=1.0)
        assert t.cycles_to_ms(1_000_000) == pytest.approx(1.0)

    def test_default_bandwidth_consistent_with_gtx280(self):
        t = TimingParams()
        bytes_per_cycle = t.txn_bytes / t.txn_service_cycles
        # 141.7 GB/s at 1.296 GHz is ~109 B/cycle; allow slack.
        assert 90 <= bytes_per_cycle <= 130
