"""KernelStats.merge is introspective: every field participates.

The merge used to enumerate field names by hand, which silently
dropped any counter added later.  It now walks ``dataclasses.fields``;
these tests pin that contract so a new field can never regress it.
"""

from dataclasses import fields

from repro.gpu.stats import GEOMETRY_FIELDS, KernelStats


def _numbered(offset: int) -> KernelStats:
    """A stats object with a distinct value in every scalar field."""
    st = KernelStats()
    for i, f in enumerate(fields(st)):
        val = getattr(st, f.name)
        if isinstance(val, dict):
            continue
        setattr(st, f.name, type(val)(offset + i))
    return st


class TestMergeCoversEveryField:
    def test_every_numeric_field_is_merged(self):
        a, b = _numbered(10), _numbered(1000)
        merged = a.merge(b)
        for f in fields(KernelStats):
            va, vb = getattr(a, f.name), getattr(b, f.name)
            if isinstance(va, dict):
                continue
            got = getattr(merged, f.name)
            if f.name in GEOMETRY_FIELDS:
                assert got == max(va, vb), f.name
            else:
                assert got == va + vb, f.name
            # The field actually changed — catches a merge that copies
            # neither side and leaves the default.
            assert got != type(va)(0), f.name

    def test_geometry_fields_exist(self):
        names = {f.name for f in fields(KernelStats)}
        assert GEOMETRY_FIELDS <= names

    def test_dict_fields_merge_keywise(self):
        a, b = KernelStats(), KernelStats()
        a.count("flushes", 3)
        a.stall("atomic", 10.0)
        b.count("flushes", 2)
        b.count("overflow_flushes", 1)
        b.stall("memory", 5.0)
        merged = a.merge(b)
        assert merged.extra == {"flushes": 5, "overflow_flushes": 1}
        assert merged.stall_cycles == {"atomic": 10.0, "memory": 5.0}

    def test_merge_is_non_destructive(self):
        a, b = _numbered(1), _numbered(2)
        before = (a.cycles, b.cycles)
        a.merge(b)
        assert (a.cycles, b.cycles) == before
