"""Behavioural tests for the discrete-event engine and launch API."""

import pytest

from repro.errors import DeadlockError, KernelFault, LaunchError
from repro.gpu import Device, DeviceConfig


def make_device(mps=2, **timing):
    cfg = DeviceConfig.small(mps)
    if timing:
        cfg = cfg.with_timing(**timing)
    return Device(cfg)


class TestLaunchValidation:
    def test_block_must_be_warp_multiple(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(1)

        with pytest.raises(LaunchError):
            dev.launch(k, grid=1, block=48)

    def test_grid_must_be_positive(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(1)

        with pytest.raises(LaunchError):
            dev.launch(k, grid=0, block=32)

    def test_oversized_smem_rejected(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(1)

        with pytest.raises(LaunchError):
            dev.launch(k, grid=1, block=32, smem_bytes=32 * 1024)

    def test_stats_record_geometry(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(1)

        st = dev.launch(k, grid=6, block=64, smem_bytes=4096)
        assert st.grid_blocks == 6
        assert st.threads_per_block == 64
        assert st.blocks_per_mp == 4  # 16KB / 4KB


class TestFunctionalExecution:
    def test_every_block_runs(self):
        dev = make_device()
        flags = dev.gmem.alloc(4 * 64)

        def k(ctx, base):
            if ctx.warp_id == 0:
                ctx.gmem.write_u32(base + 4 * ctx.block_id, ctx.block_id + 1)
                yield from ctx.gwrite(base + 4 * ctx.block_id, b"")
            yield from ctx.compute(1)

        dev.launch(k, grid=64, block=64, args=(flags,))
        for b in range(64):
            assert dev.gmem.read_u32(flags + 4 * b) == b + 1

    def test_kernel_exception_wrapped(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(1)
            raise ValueError("boom")

        with pytest.raises(KernelFault, match="boom"):
            dev.launch(k, grid=1, block=32)

    def test_atomic_returns_old_value_in_issue_order(self):
        dev = make_device()
        ctr = dev.gmem.alloc(4)
        seen = []

        def k(ctx):
            old = yield from ctx.atomic_add_global(ctr, 1)
            seen.append(old)

        dev.launch(k, grid=4, block=32)
        assert sorted(seen) == [0, 1, 2, 3]
        assert dev.gmem.read_u32(ctr) == 4

    def test_shared_atomic_is_block_local(self):
        dev = make_device()
        out = dev.gmem.alloc(8 * 4)

        def k(ctx):
            old = yield from ctx.atomic_add_shared(0, 1)
            if old == ctx.warps_per_block - 1:  # last warp of the block
                ctx.gmem.write_u32(out + 4 * ctx.block_id, ctx.smem.read_u32(0))
                yield from ctx.gwrite(out + 4 * ctx.block_id, b"")

        dev.launch(k, grid=2, block=4 * 32, smem_bytes=64)
        assert dev.gmem.read_u32(out) == 4
        assert dev.gmem.read_u32(out + 4) == 4


class TestBarrier:
    def test_barrier_orders_phases(self):
        dev = make_device()
        # Warp 0 writes smem, all barrier, warp 1 reads it.
        result = dev.gmem.alloc(4)

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.compute(500)  # arrive late
                yield from ctx.swrite(0, (1234).to_bytes(4, "little"))
            yield from ctx.barrier()
            if ctx.warp_id == 1:
                val = ctx.smem.read_u32(0)
                ctx.gmem.write_u32(result, val)
                yield from ctx.gwrite(result, b"")

        dev.launch(k, grid=1, block=64, smem_bytes=64)
        assert dev.gmem.read_u32(result) == 1234

    def test_exited_warps_do_not_block_barrier(self):
        dev = make_device()

        def k(ctx):
            if ctx.warp_id == 0:
                return  # exits immediately
                yield  # pragma: no cover
            yield from ctx.barrier()
            yield from ctx.compute(1)

        st = dev.launch(k, grid=1, block=96)
        assert st.barriers == 2

    def test_divergent_barrier_deadlocks(self):
        """A barrier on a branch some warps never take must hang —
        the constraint motivating the paper's wait-signal primitive."""
        dev = make_device()

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.barrier()
            else:
                flag = []
                yield from ctx.poll(lambda: bool(flag), interval=10.0)

        with pytest.raises(DeadlockError):
            dev.launch(k, grid=1, block=64, max_cycles=1e6)


class TestPoll:
    def test_wait_signal_roundtrip(self):
        dev = make_device()
        order = []

        def k(ctx):
            flag = ctx.block_state.setdefault("flag", [])
            if ctx.warp_id == 0:
                yield from ctx.compute(5000)
                order.append("signal")
                flag.append(1)
            else:
                yield from ctx.poll(lambda: bool(flag), interval=50.0)
                order.append("woke")

        dev.launch(k, grid=1, block=64)
        assert order == ["signal", "woke"]

    def test_poll_counts_probes(self):
        dev = make_device()

        def k(ctx):
            flag = ctx.block_state.setdefault("flag", [])
            if ctx.warp_id == 0:
                yield from ctx.compute(1000)
                flag.append(1)
            else:
                yield from ctx.poll(lambda: bool(flag), interval=100.0)

        st = dev.launch(k, grid=1, block=64)
        # Roughly 1000/100 probes plus the final successful one.
        assert 5 <= st.polls <= 20

    def test_unsatisfiable_poll_hits_max_cycles(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.poll(lambda: False, interval=10.0)

        with pytest.raises(DeadlockError):
            dev.launch(k, grid=1, block=32, max_cycles=1e5)


class TestTiming:
    def test_compute_cost(self):
        dev = make_device(1)

        def k(ctx):
            yield from ctx.compute(1000)

        st = dev.launch(k, grid=1, block=32)
        assert 1000 <= st.cycles < 1100

    def test_latency_hiding_with_more_warps(self):
        """More warps per block hide global latency (Section II-A)."""
        dev1 = make_device(1)
        dev8 = make_device(1)
        src1 = dev1.gmem.alloc(1 << 16)
        src8 = dev8.gmem.alloc(1 << 16)

        def k(ctx, src):
            for i in range(8):
                yield from ctx.gread(
                    src + (ctx.global_warp_id * 8 + i) * 128, 128
                )

        t1 = dev1.launch(k, grid=1, block=32, args=(src1,)).cycles
        t8 = dev8.launch(k, grid=1, block=256, args=(src8,)).cycles
        # 8x the work in well under 8x the time.
        assert t8 < 4 * t1

    def test_scattered_reads_slower_than_coalesced(self):
        deva = make_device(1)
        devb = make_device(1)
        n = 1 << 16
        srca = deva.gmem.alloc(n)
        srcb = devb.gmem.alloc(n)

        def coalesced(ctx, src):
            for i in range(64):
                yield from ctx.gread(src + i * 128, 128)

        def scattered(ctx, src):
            for i in range(64):
                accesses = [(src + ((i * 32 + l) * 997) % (n - 4), 4) for l in ctx.lane_ids]
                yield from ctx.gread_scattered(accesses)

        tc = deva.launch(coalesced, grid=1, block=32, args=(srca,))
        ts = devb.launch(scattered, grid=1, block=32, args=(srcb,))
        assert ts.global_transactions > 4 * tc.global_transactions

    def test_atomic_contention_slows_kernel(self):
        """Many warps hammering one counter vs. distinct counters."""
        dev_hot = make_device(2)
        dev_cold = make_device(2)
        hot = dev_hot.gmem.alloc(4)
        cold = dev_cold.gmem.alloc(4 * 1024)

        def k_hot(ctx, a):
            for _ in range(8):
                yield from ctx.atomic_add_global(a, 1)

        def k_cold(ctx, a):
            for _ in range(8):
                yield from ctx.atomic_add_global(a + 4 * ctx.global_warp_id, 1)

        th = dev_hot.launch(k_hot, grid=8, block=256, args=(hot,)).cycles
        tc = dev_cold.launch(k_cold, grid=8, block=256, args=(cold,)).cycles
        assert th > 2 * tc
        assert dev_hot.gmem.read_u32(hot) == 8 * 8 * 8

    def test_block_backfill(self):
        """More blocks than fit at once still all run, serially."""
        dev = make_device(1)
        ctr = dev.gmem.alloc(4)

        def k(ctx, a):
            if ctx.warp_id == 0:
                yield from ctx.atomic_add_global(a, 1)

        # 1 MP x 8 block slots, 20 blocks: requires backfill.
        st = dev.launch(k, grid=20, block=32, args=(ctr,))
        assert dev.gmem.read_u32(ctr) == 20
        assert st.cycles > 0


class TestTexturePath:
    def test_texture_requires_flag(self):
        dev = make_device()
        src = dev.gmem.alloc(64)

        def k(ctx, src):
            yield from ctx.tex_read([(src, 4)])

        with pytest.raises(LaunchError):
            dev.launch(k, grid=1, block=32, args=(src,))

    def test_texture_hits_save_bandwidth_not_latency(self):
        dev = make_device(1, global_latency=500.0, texture_hit_latency=500.0)
        src = dev.gmem.alloc(4096)

        def k(ctx, src):
            for _ in range(4):
                yield from ctx.tex_read([(src + 4 * l, 4) for l in ctx.lane_ids])

        st = dev.launch(k, grid=1, block=32, args=(src,), uses_texture=True)
        assert st.texture_hits > 0
        assert st.texture_misses > 0
        # Hits consumed no global transactions: far fewer than 4 warp reads.
        assert st.global_transactions <= st.texture_misses

    def test_texture_data_is_correct(self):
        dev = make_device()
        src = dev.gmem.alloc(64)
        dev.gmem.write(src, b"texturecache!+.."[:16] * 4)
        out = []

        def k(ctx, src):
            data = yield from ctx.tex_read([(src, 8)])
            out.append(data[0])

        dev.launch(k, grid=1, block=32, args=(src,), uses_texture=True)
        assert out == [b"texturec"]


class TestDeterminism:
    def test_identical_runs_identical_cycles(self):
        def run():
            dev = make_device()
            a = dev.gmem.alloc(4)

            def k(ctx, a):
                yield from ctx.atomic_add_global(a, 1)
                yield from ctx.gread(a, 4)
                yield from ctx.compute(10)

            return dev.launch(k, grid=16, block=128, args=(a,)).cycles

        assert run() == run()
