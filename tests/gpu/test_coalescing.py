"""Tests for the half-warp coalescing model (paper Section II-A)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.coalescing import (
    bytes_touched,
    contiguous_transactions,
    estimate_record_read_transactions,
    scattered_transactions,
    segments_for_range,
    strided_lane_accesses,
    transactions_for,
)


class TestSegments:
    def test_empty_range(self):
        assert segments_for_range(0, 0, 64) == 0

    def test_aligned_single_segment(self):
        assert segments_for_range(64, 64, 64) == 1

    def test_unaligned_range_spans_two(self):
        assert segments_for_range(60, 8, 64) == 2

    def test_large_range(self):
        assert segments_for_range(0, 1024, 64) == 16


class TestContiguous:
    def test_warp_reading_128_bytes_aligned(self):
        # 32 lanes x 4B, perfectly coalesced: 2 x 64B transactions.
        assert contiguous_transactions(0, 128, 64) == 2

    def test_misaligned_adds_one(self):
        assert contiguous_transactions(4, 128, 64) == 3


class TestScattered:
    def test_coalesced_half_warps(self):
        # Lane i reads word i: each 16-lane half-warp covers one 64B seg.
        acc = strided_lane_accesses(0, 4, 4, 32)
        assert scattered_transactions(acc, 64) == 2

    def test_fully_scattered_one_txn_per_lane(self):
        acc = strided_lane_accesses(0, 256, 4, 32)
        assert scattered_transactions(acc, 64) == 32

    def test_broadcast_same_address(self):
        acc = [(128, 4)] * 32
        assert scattered_transactions(acc, 64) == 2  # one per half-warp

    def test_access_straddling_segments(self):
        assert scattered_transactions([(60, 8)], 64) == 2

    def test_zero_size_access_free(self):
        assert scattered_transactions([(0, 0)] * 32, 64) == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 20), st.integers(1, 64)),
            min_size=1,
            max_size=32,
        )
    )
    def test_bounds_property(self, accesses):
        """1 <= txns <= sum of per-access worst cases."""
        n = scattered_transactions(accesses, 64)
        worst = sum(segments_for_range(a, s, 64) for a, s in accesses)
        assert 1 <= n <= worst

    @given(st.integers(0, 1 << 16), st.integers(1, 4096))
    def test_contiguous_never_beats_bandwidth(self, addr, nbytes):
        """Coalesced transactions move at least the requested bytes."""
        n = contiguous_transactions(addr, nbytes, 64)
        assert n * 64 >= nbytes


class TestDispatch:
    def test_transactions_for_contiguous(self):
        assert transactions_for(addr=0, nbytes=128, seg=64) == 2

    def test_transactions_for_scattered(self):
        assert transactions_for(addrs=[(0, 4), (1024, 4)], seg=64) == 2

    def test_bytes_touched(self):
        assert bytes_touched(nbytes=100) == 100
        assert bytes_touched(addrs=[(0, 4), (8, 8)]) == 12


class TestRecordReadEstimate:
    def test_records_at_scattered_offsets_cost_per_lane(self):
        # 32 records of 4 bytes, each in its own segment.
        offs = [i * 256 for i in range(32)]
        sizes = [4] * 32
        assert estimate_record_read_transactions(offs, sizes) == 32

    def test_adjacent_records_coalesce(self):
        # 32 adjacent 4-byte records = the coalesced pattern.
        offs = [i * 4 for i in range(32)]
        sizes = [4] * 32
        assert estimate_record_read_transactions(offs, sizes) == 2

    def test_long_records_multiply_steps(self):
        offs = [i * 1024 for i in range(16)]
        sizes = [64] * 16
        # 16 word-steps, each scattering across 16 segments.
        assert estimate_record_read_transactions(offs, sizes) == 16 * 16

    def test_empty(self):
        assert estimate_record_read_transactions([], []) == 0
