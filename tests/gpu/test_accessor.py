"""Tests for access-traced record views."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpu.accessor import Accessor, AccessTrace, lockstep_accesses


class TestAccessTrace:
    def test_single_byte_touches_one_word(self):
        t = AccessTrace()
        t.touch(5, 1)
        assert t.words == [1]

    def test_range_touches_each_word(self):
        t = AccessTrace()
        t.touch(0, 10)
        assert t.words == [0, 1, 2]

    def test_consecutive_same_word_collapsed(self):
        t = AccessTrace()
        for i in range(4):
            t.touch(i, 1)
        assert t.words == [0]

    def test_revisits_recorded(self):
        t = AccessTrace()
        t.touch(0, 4)
        t.touch(16, 4)
        t.touch(0, 4)
        assert t.words == [0, 4, 0]

    def test_zero_size_ignored(self):
        t = AccessTrace()
        t.touch(10, 0)
        assert len(t) == 0


class TestAccessor:
    def test_indexing_and_len(self):
        a = Accessor(b"hello world")
        assert len(a) == 11
        assert a[0] == ord("h")
        assert a[-1] == ord("d")
        assert a[0:5] == b"hello"

    def test_sequential_scan_trace_is_word_count(self):
        data = bytes(64)
        a = Accessor(data)
        for i in range(64):
            _ = a[i]
        assert a.trace.words == list(range(16))

    def test_typed_reads(self):
        data = (42).to_bytes(4, "little") + np.float32(1.5).tobytes()
        a = Accessor(data)
        assert a.u32(0) == 42
        assert a.f32(4) == 1.5
        assert a.trace.words == [0, 1]

    def test_i32(self):
        a = Accessor((-7).to_bytes(4, "little", signed=True))
        assert a.i32(0) == -7

    def test_f32_array(self):
        vals = np.arange(8, dtype=np.float32)
        a = Accessor(vals.tobytes())
        out = a.f32_array()
        assert np.array_equal(out, vals)
        assert a.trace.words == list(range(8))

    def test_u32_array_partial(self):
        vals = np.arange(8, dtype=np.uint32)
        a = Accessor(vals.tobytes())
        out = a.u32_array(off=8, count=2)
        assert list(out) == [2, 3]

    def test_to_bytes_touches_everything(self):
        a = Accessor(bytes(20))
        assert a.to_bytes() == bytes(20)
        assert a.trace.words == [0, 1, 2, 3, 4]

    def test_peek_bytes_untraced(self):
        a = Accessor(b"shh")
        assert a.peek_bytes() == b"shh"
        assert len(a.trace) == 0

    def test_find_charges_scanned_prefix(self):
        a = Accessor(b"x" * 40 + b"needle" + b"x" * 40)
        pos = a.find(b"needle")
        assert pos == 40
        assert a.trace.words[-1] == (40 + 6 - 1) // 4

    def test_find_miss_scans_all(self):
        a = Accessor(b"x" * 32)
        assert a.find(b"zz") == -1
        assert a.trace.words == list(range(8))

    def test_equality(self):
        assert Accessor(b"ab") == b"ab"
        assert Accessor(b"ab") == Accessor(b"ab")
        assert Accessor(b"ab") != b"cd"

    def test_iteration(self):
        a = Accessor(b"abc")
        assert list(a) == [97, 98, 99]

    @given(st.binary(min_size=1, max_size=100))
    def test_slice_matches_bytes(self, data):
        a = Accessor(data)
        assert a[: len(data) // 2] == data[: len(data) // 2]


class TestLockstep:
    def test_zip_traces(self):
        t1, t2 = AccessTrace(), AccessTrace()
        t1.touch(0, 8)   # words 0,1
        t2.touch(0, 4)   # word 0
        steps = lockstep_accesses([t1, t2], bases=[1000, 2000])
        assert steps == [[(1000, 4), (2000, 4)], [(1004, 4)]]

    def test_empty(self):
        assert lockstep_accesses([], []) == []

    def test_max_steps_truncates(self):
        t = AccessTrace()
        t.touch(0, 40)
        steps = lockstep_accesses([t], [0], max_steps=3)
        assert len(steps) == 3

    @given(
        st.lists(
            st.lists(st.integers(0, 63), min_size=0, max_size=20), min_size=1, max_size=8
        )
    )
    def test_access_conservation(self, word_lists):
        """Every traced word appears exactly once across the steps."""
        traces = []
        for words in word_lists:
            t = AccessTrace()
            deduped = []
            for w in words:
                if not deduped or deduped[-1] != w:
                    deduped.append(w)
            t.words = deduped
            traces.append(t)
        bases = [i * 4096 for i in range(len(traces))]
        steps = lockstep_accesses(traces, bases)
        total = sum(len(s) for s in steps)
        assert total == sum(len(t.words) for t in traces)
