"""Tests for WarpCtx helper operations not covered elsewhere."""

import pytest

from repro.gpu import Device, DeviceConfig
from repro.gpu.instructions import Nop


def make_device():
    return Device(DeviceConfig.small(1))


class TestScatteredOps:
    def test_gwrite_scattered_moves_bytes(self):
        dev = make_device()
        dst = dev.gmem.alloc(1024)

        def k(ctx, dst):
            writes = [(dst + 100 * i, bytes([i]) * 10) for i in range(5)]
            yield from ctx.gwrite_scattered(writes)

        st = dev.launch(k, grid=1, block=32, args=(dst,))
        for i in range(5):
            assert dev.gmem.read(dst + 100 * i, 10) == bytes([i]) * 10
        # 5 scattered 10-byte writes: one transaction each (or two if
        # straddling), never coalesced into fewer than 5.
        assert st.global_transactions >= 5

    def test_gread_scattered_returns_data(self):
        dev = make_device()
        src = dev.gmem.alloc(256)
        dev.gmem.write(src, bytes(range(256)))
        got = {}

        def k(ctx, src):
            datas = yield from ctx.gread_scattered([(src + 7, 3), (src + 99, 2)])
            got["d"] = datas

        dev.launch(k, grid=1, block=32, args=(src,))
        assert got["d"] == [bytes([7, 8, 9]), bytes([99, 100])]

    def test_atomic_multi_returns_all_olds(self):
        dev = make_device()
        base = dev.gmem.alloc(12)
        got = {}

        def k(ctx, base):
            olds = yield from ctx.atomic_add_global_multi(
                [(base, 5), (base + 4, 7), (base + 8, 9)]
            )
            got.setdefault("olds", []).append(olds)

        dev.launch(k, grid=1, block=64, args=(base,))
        assert dev.gmem.read_u32(base) == 10
        assert dev.gmem.read_u32(base + 4) == 14
        assert dev.gmem.read_u32(base + 8) == 18
        all_olds = sorted(got["olds"])
        assert all_olds == [(0, 0, 0), (5, 7, 9)]

    def test_multi_atomic_parallel_completion(self):
        """Three independent counters complete in ~one round trip, not
        three chained ones."""
        dev_multi = make_device()
        dev_chain = make_device()
        b1 = dev_multi.gmem.alloc(12)
        b2 = dev_chain.gmem.alloc(12)

        def k_multi(ctx, b):
            yield from ctx.atomic_add_global_multi(
                [(b, 1), (b + 4, 1), (b + 8, 1)]
            )

        def k_chain(ctx, b):
            for off in (0, 4, 8):
                yield from ctx.atomic_add_global(b + off, 1)

        tm = dev_multi.launch(k_multi, grid=1, block=32, args=(b1,)).cycles
        tc = dev_chain.launch(k_chain, grid=1, block=32, args=(b2,)).cycles
        assert tm < 0.6 * tc


class TestMiscOps:
    def test_nop_costs_nothing_extra(self):
        dev = make_device()

        def k(ctx):
            yield Nop()
            yield from ctx.compute(10)

        st = dev.launch(k, grid=1, block=32)
        assert st.instructions == 2

    def test_fence_counted(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.fence_block()

        st = dev.launch(k, grid=1, block=32)
        assert st.fences == 1

    def test_count_helper(self):
        dev = make_device()

        def k(ctx):
            ctx.count("custom_events", 3)
            yield from ctx.compute(1)

        st = dev.launch(k, grid=1, block=64)
        assert st.extra["custom_events"] == 6  # both warps

    def test_identity_properties(self):
        dev = make_device()
        seen = {}

        def k(ctx):
            seen[(ctx.block_id, ctx.warp_id)] = (
                ctx.global_warp_id, ctx.warps_per_block,
                len(list(ctx.lane_ids)),
            )
            yield from ctx.compute(1)

        dev.launch(k, grid=3, block=64)
        assert seen[(2, 1)] == (5, 2, 32)

    def test_stouch_with_bank_pattern(self):
        dev = make_device()

        def k(ctx):
            # 16-way conflict: lane i touches word i*16.
            addrs = [i * 16 * 4 for i in range(16)]
            yield from ctx.stouch(64, word_addrs=addrs)

        st = dev.launch(k, grid=1, block=32, smem_bytes=4096)
        t = DeviceConfig.small(1).timing
        expected = t.shared_latency + 15 * t.bank_conflict_penalty
        assert st.cycles >= expected


class TestMemoryViews:
    def test_labelled_regions_roundtrip(self):
        dev = make_device()
        a = dev.gmem.alloc(100, label="mybuf")
        addr, size = dev.gmem.region("mybuf")
        assert (addr, size) == (a, 100)

    def test_view_reflects_kernel_writes(self):
        dev = make_device()
        a = dev.gmem.alloc(16)
        v = dev.gmem.view(a, 16)

        def k(ctx, a):
            yield from ctx.gwrite(a, b"ABCDEFGHIJKLMNOP")

        dev.launch(k, grid=1, block=32, args=(a,))
        assert bytes(v) == b"ABCDEFGHIJKLMNOP"
