"""Tests for the Fermi-style L2 cache extension (paper Section VI)."""

import pytest

from repro.framework import MemoryMode
from repro.gpu import Device, DeviceConfig
from repro.gpu.interconnect import MemorySystem
from repro.gpu.l2cache import L2Cache


class TestL2Model:
    def make(self, **kw):
        defaults = dict(capacity=4096, line_bytes=128, ways=2, hit_latency=100)
        defaults.update(kw)
        return L2Cache(**defaults), MemorySystem(latency=500, service=0.5)

    def test_miss_then_hit(self):
        l2, mem = self.make()
        t1 = l2.access_read(mem, 0.0, [(0, 64)])
        assert t1 > 400  # DRAM fill
        t2 = l2.access_read(mem, 0.0, [(0, 64)])
        assert t2 == pytest.approx(100)  # L2 hit
        assert l2.hits == 1 and l2.misses == 1

    def test_hits_save_dram_bandwidth(self):
        l2, mem = self.make()
        l2.access_read(mem, 0.0, [(0, 128)])
        before = mem.transactions
        l2.access_read(mem, 0.0, [(0, 128)])
        assert mem.transactions == before

    def test_lru_eviction(self):
        l2, mem = self.make(capacity=256, ways=1)  # 2 sets x 1 way
        l2.access_read(mem, 0.0, [(0, 1)])       # line 0 -> set 0
        l2.access_read(mem, 0.0, [(256, 1)])     # line 2 -> set 0, evicts
        t = l2.access_read(mem, 0.0, [(0, 1)])
        assert t > 400  # miss again
        assert l2.hit_rate < 0.5

    def test_write_through_allocates(self):
        l2, mem = self.make()
        l2.access_write(mem, 0.0, [(0, 64)], ntxn=1, nbytes=64)
        t = l2.access_read(mem, 0.0, [(0, 64)])
        assert t == pytest.approx(100)

    def test_empty_ranges(self):
        l2, mem = self.make()
        assert l2.access_read(mem, 5.0, [(0, 0)]) == 5.0


class TestFermiConfig:
    def test_preset_shape(self):
        cfg = DeviceConfig.fermi()
        assert cfg.l2_cache_bytes == 768 * 1024
        assert cfg.shared_mem_per_mp == 48 * 1024
        assert cfg.mp_count == 14

    def test_gt200_has_no_l2(self):
        assert DeviceConfig.gtx280().l2_cache_bytes == 0

    def test_repeated_reads_cheaper_on_fermi(self):
        """The future-work hypothesis: a global-memory cache absorbs
        re-reads that GT200 pays full price for."""

        def run(cfg):
            dev = Device(cfg)
            src = dev.gmem.alloc(4096)

            def k(ctx, src):
                for _ in range(16):
                    yield from ctx.gread(src, 1024)  # same kilobyte

            return dev.launch(k, grid=1, block=32, args=(src,)).cycles

        gt200 = run(DeviceConfig.small(1))
        fermi_cfg = DeviceConfig.fermi()
        from dataclasses import replace

        fermi = run(replace(fermi_cfg, mp_count=1))
        assert fermi < gt200

    def test_l2_counters_in_stats(self):
        dev = Device(DeviceConfig.fermi())
        src = dev.gmem.alloc(1024)

        def k(ctx, src):
            yield from ctx.gread(src, 512)
            yield from ctx.gread(src, 512)

        st = dev.launch(k, grid=1, block=32, args=(src,))
        assert st.extra["l2_hits"] > 0
        assert st.extra["l2_misses"] > 0


class TestFrameworkOnFermi:
    def test_wordcount_runs_on_fermi(self):
        """The whole framework runs unchanged on the Fermi config —
        the paper's portability goal."""
        import struct

        from repro.framework import (
            KeyValueSet,
            MapReduceSpec,
            ReduceStrategy,
            run_job,
        )

        def wc_map(key, value, emit, const):
            for w in key.to_bytes().split(b" "):
                if w:
                    emit(w, struct.pack("<I", 1))

        def wc_reduce(key, values, emit, const):
            emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))

        spec = MapReduceSpec(name="fermi_wc", map_record=wc_map,
                             reduce_record=wc_reduce)
        inp = KeyValueSet([(b"x y x", struct.pack("<I", i)) for i in range(64)])
        res = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR,
                      config=DeviceConfig.fermi(), threads_per_block=128)
        got = dict(list(res.output))
        assert got[b"x"] == struct.pack("<I", 128)
        assert got[b"y"] == struct.pack("<I", 64)

    def test_g_mode_gap_narrows_with_cache(self):
        """With an L2 absorbing re-reads, the G-vs-SI gap shrinks for
        a scan-heavy workload (the architectural trend that made
        Mars-style frameworks obsolete)."""
        from repro.analysis.figures import run_map_kernel
        from repro.workloads import InvertedIndex

        ii = InvertedIndex()
        g_gt200 = run_map_kernel(ii, MemoryMode.G, size="small",
                                 config=DeviceConfig.gtx280(), scale=0.5)
        si_gt200 = run_map_kernel(ii, MemoryMode.SI, size="small",
                                  config=DeviceConfig.gtx280(), scale=0.5)
        g_fermi = run_map_kernel(ii, MemoryMode.G, size="small",
                                 config=DeviceConfig.fermi(), scale=0.5)
        si_fermi = run_map_kernel(ii, MemoryMode.SI, size="small",
                                  config=DeviceConfig.fermi(), scale=0.5)
        gap_gt200 = g_gt200.cycles / si_gt200.cycles
        gap_fermi = g_fermi.cycles / si_fermi.cycles
        assert gap_fermi < gap_gt200
