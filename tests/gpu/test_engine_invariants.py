"""Property tests on engine-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import Device, DeviceConfig


class TestMonotonicity:
    @given(st.integers(1, 12))
    @settings(max_examples=10, deadline=None)
    def test_more_compute_never_faster(self, n):
        """Adding work to every warp cannot reduce kernel time."""

        def run(rounds):
            dev = Device(DeviceConfig.small(1))

            def k(ctx):
                for _ in range(rounds):
                    yield from ctx.compute(100)

            return dev.launch(k, grid=2, block=64).cycles

        assert run(n + 1) >= run(n)

    @given(st.integers(0, 6))
    @settings(max_examples=10, deadline=None)
    def test_more_blocks_never_faster(self, extra):
        def run(grid):
            dev = Device(DeviceConfig.small(1))
            a = dev.gmem.alloc(4)

            def k(ctx, a):
                yield from ctx.atomic_add_global(a, 1)
                yield from ctx.compute(200)

            return dev.launch(k, grid=grid, block=32, args=(a,)).cycles

        assert run(9 + extra) >= run(9) - 1e-9

    def test_higher_latency_never_faster(self):
        def run(lat):
            dev = Device(DeviceConfig.small(1).with_timing(global_latency=lat))
            src = dev.gmem.alloc(4096)

            def k(ctx, src):
                for i in range(8):
                    yield from ctx.gread(src + 512 * i, 512)

            return dev.launch(k, grid=1, block=32, args=(src,)).cycles

        assert run(300.0) <= run(500.0) <= run(700.0)


class TestConservation:
    @given(st.integers(1, 8), st.integers(1, 4))
    @settings(max_examples=10, deadline=None)
    def test_instruction_count_exact(self, per_warp, n_warps):
        dev = Device(DeviceConfig.small(1))

        def k(ctx):
            for _ in range(per_warp):
                yield from ctx.compute(1)

        stt = dev.launch(k, grid=1, block=32 * n_warps)
        assert stt.compute_ops == per_warp * n_warps
        assert stt.instructions == per_warp * n_warps

    def test_bytes_moved_matches_requests(self):
        dev = Device(DeviceConfig.small(1))
        src = dev.gmem.alloc(8192)

        def k(ctx, src):
            yield from ctx.gread(src, 1000)
            yield from ctx.gwrite(src, b"z" * 500)

        stt = dev.launch(k, grid=1, block=32, args=(src,))
        assert stt.global_bytes == 1000 + 500  # exactly the requested bytes

    def test_stall_sum_vs_span(self):
        """Total warp wait-time >= the kernel span for a serial warp."""
        dev = Device(DeviceConfig.small(1))

        def k(ctx):
            yield from ctx.compute(1000)

        stt = dev.launch(k, grid=1, block=32)
        assert sum(stt.stall_cycles.values()) >= 1000
