"""Tests for the stall-breakdown profiler."""

import pytest

from repro.analysis.figures import run_map_kernel
from repro.framework.modes import MemoryMode
from repro.gpu import Device, DeviceConfig
from repro.gpu.stats import KernelStats
from repro.workloads import WordCount


class TestStallAccounting:
    def test_compute_only_kernel(self):
        dev = Device(DeviceConfig.small(1))

        def k(ctx):
            yield from ctx.compute(100)

        st = dev.launch(k, grid=1, block=32)
        assert st.stall_cycles["compute"] == pytest.approx(100)
        assert st.stall_breakdown() == {"compute": 1.0}

    def test_categories_present(self):
        dev = Device(DeviceConfig.small(1))
        a = dev.gmem.alloc(256)

        def k(ctx, a):
            yield from ctx.gread(a, 128)
            yield from ctx.gwrite(a, b"x" * 64)
            yield from ctx.atomic_add_global(a + 128, 1)
            yield from ctx.swrite(0, b"y" * 16)
            yield from ctx.barrier()

        st = dev.launch(k, grid=1, block=64, smem_bytes=64, args=(a,))
        for cat in ("global_read", "global_write", "atomic", "shared",
                    "barrier"):
            assert cat in st.stall_cycles, cat
        frac = st.stall_breakdown()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_barrier_wait_measures_straggler(self):
        dev = Device(DeviceConfig.small(1))

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.compute(10_000)
            yield from ctx.barrier()

        st = dev.launch(k, grid=1, block=128)
        # 3 warps wait ~10K cycles each for warp 0.
        assert st.stall_cycles["barrier"] > 25_000

    def test_merge_adds_stalls(self):
        a = KernelStats()
        a.stall("compute", 10.0)
        b = KernelStats()
        b.stall("compute", 5.0)
        b.stall("atomic", 2.0)
        m = a.merge(b)
        assert m.stall_cycles == {"compute": 15.0, "atomic": 2.0}

    def test_empty_breakdown(self):
        assert KernelStats().stall_breakdown() == {}


class TestModeProfiles:
    """The profiler must tell the paper's story by itself."""

    def test_g_mode_wc_is_atomic_dominated(self):
        st = run_map_kernel(WordCount(), MemoryMode.G, size="small",
                            config=DeviceConfig.gtx280())
        frac = st.stall_breakdown()
        assert frac["atomic"] > 0.3
        assert frac["atomic"] > frac.get("shared", 0)

    def test_sio_mode_wc_shifts_waits_off_atomics(self):
        g = run_map_kernel(WordCount(), MemoryMode.G, size="small",
                           config=DeviceConfig.gtx280())
        sio = run_map_kernel(WordCount(), MemoryMode.SIO, size="small",
                             config=DeviceConfig.gtx280())
        assert (
            sio.stall_cycles.get("atomic", 0.0)
            < 0.2 * g.stall_cycles["atomic"]
        )
