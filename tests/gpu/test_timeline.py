"""Tests for the per-warp timeline tracer."""

import pytest

from repro.gpu import Device, DeviceConfig, Timeline


def make_device():
    return Device(DeviceConfig.small(1))


class TestTimeline:
    def test_records_events(self):
        dev = make_device()
        tl = Timeline()
        a = dev.gmem.alloc(256)

        def k(ctx, a):
            yield from ctx.compute(50)
            yield from ctx.gread(a, 128)

        dev.launch(k, grid=1, block=64, args=(a,), timeline=tl)
        cats = {e.category for e in tl.events}
        assert "compute" in cats and "global_read" in cats
        assert len(tl.lanes()) == 2  # two warps

    def test_span_and_durations(self):
        dev = make_device()
        tl = Timeline()

        def k(ctx):
            yield from ctx.compute(100)

        dev.launch(k, grid=1, block=32, timeline=tl)
        lo, hi = tl.span()
        assert hi - lo >= 100
        assert all(e.duration > 0 for e in tl.events)

    def test_block_filter(self):
        dev = make_device()
        tl = Timeline(blocks={1})

        def k(ctx):
            yield from ctx.compute(10)

        dev.launch(k, grid=4, block=32, timeline=tl)
        assert {e.block for e in tl.events} == {1}

    def test_busy_and_utilisation(self):
        dev = make_device()
        tl = Timeline()

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.compute(1000)
            yield from ctx.barrier()

        dev.launch(k, grid=1, block=64, timeline=tl)
        busy0 = tl.busy_cycles(0, 0)
        assert busy0["compute"] == pytest.approx(1000)
        # Warp 1 spent nearly the whole launch at the barrier.
        busy1 = tl.busy_cycles(0, 1)
        assert busy1["barrier"] > 900
        assert 0.0 < tl.utilisation(0, 0) <= 1.0

    def test_render_gantt(self):
        dev = make_device()
        tl = Timeline()
        a = dev.gmem.alloc(64)

        def k(ctx, a):
            yield from ctx.compute(200)
            yield from ctx.atomic_add_global(a, 1)

        dev.launch(k, grid=1, block=64, args=(a,), timeline=tl)
        art = tl.render(width=60)
        assert "b000w00" in art and "b000w01" in art
        assert "#" in art  # compute glyph
        assert "A" in art  # atomic glyph

    def test_empty_render(self):
        assert Timeline().render() == "(empty timeline)"

    def test_helper_warp_polls_are_visible(self):
        """The framework's parked helpers show up as poll glyphs."""
        from repro.framework import DeviceRecordSet, KeyValueSet, MemoryMode
        from repro.framework.map_engine import build_map_runtime, map_kernel
        from repro.framework.api import MapReduceSpec

        dev = make_device()
        tl = Timeline(blocks={0})
        spec = MapReduceSpec(
            name="t", map_record=lambda k, v, e, c: e(k.to_bytes(), b"1")
        )
        inp = KeyValueSet([(b"record%03d" % i, b"") for i in range(64)])
        d_in = DeviceRecordSet.upload(dev.gmem, inp)
        rt = build_map_runtime(dev, spec, MemoryMode.SIO, d_in,
                               threads_per_block=128)
        dev.launch(map_kernel, grid=rt.grid, block=128,
                   smem_bytes=rt.layout.smem_bytes, args=(rt,), timeline=tl)
        polls = [e for e in tl.events if e.category == "poll"]
        assert polls  # helpers were parked at some point


class TestTimelineEdgeCases:
    def test_zero_duration_span_renders_empty(self):
        tl = Timeline()
        tl.record(0, 0, "compute", 500.0, 500.0)
        assert tl.span() == (500.0, 500.0)
        assert tl.render() == "(empty timeline)"

    def test_zero_duration_span_utilisation(self):
        tl = Timeline()
        tl.record(0, 0, "compute", 500.0, 500.0)
        assert tl.utilisation(0, 0) == 0.0

    def test_render_explicit_lane_subset(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(50)

        tl = Timeline()
        dev.launch(k, grid=2, block=64, timeline=tl)
        out = tl.render(lanes=[(0, 0)])
        assert "b000w00" in out
        assert "b000w01" not in out
        assert "b001w00" not in out

    def test_utilisation_for_silent_warp(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(50)

        tl = Timeline()
        dev.launch(k, grid=1, block=32, timeline=tl)
        # Warp 9 of block 5 never ran: no events, utilisation is zero.
        assert tl.utilisation(5, 9) == 0.0

    def test_empty_timeline_utilisation_and_span(self):
        tl = Timeline()
        assert tl.span() == (0.0, 0.0)
        assert tl.utilisation(0, 0) == 0.0


class TestTimelineMarks:
    def test_mark_records_and_respects_block_filter(self):
        tl = Timeline(blocks={0})
        tl.mark(0, 1, "flush", 42.0, {"epoch": 1})
        tl.mark(3, 0, "flush", 50.0)  # filtered out
        assert len(tl.marks) == 1
        m = tl.marks[0]
        assert (m.block, m.warp, m.name, m.time) == (0, 1, "flush", 42.0)
        assert m.attrs == {"epoch": 1}

    def test_marks_do_not_affect_render_or_utilisation(self):
        tl = Timeline()
        tl.mark(0, 0, "flush", 10.0)
        assert tl.render() == "(empty timeline)"
        assert tl.utilisation(0, 0) == 0.0

    def test_ctx_mark_surfaces_through_launch(self):
        dev = make_device()

        def k(ctx):
            yield from ctx.compute(10)
            ctx.mark("checkpoint", stage=1)
            yield from ctx.compute(10)

        tl = Timeline()
        dev.launch(k, grid=1, block=32, timeline=tl)
        marks = [m for m in tl.marks if m.name == "checkpoint"]
        assert len(marks) == 1
        assert marks[0].attrs == {"stage": 1}
        assert marks[0].time > 0.0
