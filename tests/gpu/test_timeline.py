"""Tests for the per-warp timeline tracer."""

import pytest

from repro.gpu import Device, DeviceConfig, Timeline


def make_device():
    return Device(DeviceConfig.small(1))


class TestTimeline:
    def test_records_events(self):
        dev = make_device()
        tl = Timeline()
        a = dev.gmem.alloc(256)

        def k(ctx, a):
            yield from ctx.compute(50)
            yield from ctx.gread(a, 128)

        dev.launch(k, grid=1, block=64, args=(a,), timeline=tl)
        cats = {e.category for e in tl.events}
        assert "compute" in cats and "global_read" in cats
        assert len(tl.lanes()) == 2  # two warps

    def test_span_and_durations(self):
        dev = make_device()
        tl = Timeline()

        def k(ctx):
            yield from ctx.compute(100)

        dev.launch(k, grid=1, block=32, timeline=tl)
        lo, hi = tl.span()
        assert hi - lo >= 100
        assert all(e.duration > 0 for e in tl.events)

    def test_block_filter(self):
        dev = make_device()
        tl = Timeline(blocks={1})

        def k(ctx):
            yield from ctx.compute(10)

        dev.launch(k, grid=4, block=32, timeline=tl)
        assert {e.block for e in tl.events} == {1}

    def test_busy_and_utilisation(self):
        dev = make_device()
        tl = Timeline()

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.compute(1000)
            yield from ctx.barrier()

        dev.launch(k, grid=1, block=64, timeline=tl)
        busy0 = tl.busy_cycles(0, 0)
        assert busy0["compute"] == pytest.approx(1000)
        # Warp 1 spent nearly the whole launch at the barrier.
        busy1 = tl.busy_cycles(0, 1)
        assert busy1["barrier"] > 900
        assert 0.0 < tl.utilisation(0, 0) <= 1.0

    def test_render_gantt(self):
        dev = make_device()
        tl = Timeline()
        a = dev.gmem.alloc(64)

        def k(ctx, a):
            yield from ctx.compute(200)
            yield from ctx.atomic_add_global(a, 1)

        dev.launch(k, grid=1, block=64, args=(a,), timeline=tl)
        art = tl.render(width=60)
        assert "b000w00" in art and "b000w01" in art
        assert "#" in art  # compute glyph
        assert "A" in art  # atomic glyph

    def test_empty_render(self):
        assert Timeline().render() == "(empty timeline)"

    def test_helper_warp_polls_are_visible(self):
        """The framework's parked helpers show up as poll glyphs."""
        from repro.framework import DeviceRecordSet, KeyValueSet, MemoryMode
        from repro.framework.map_engine import build_map_runtime, map_kernel
        from repro.framework.api import MapReduceSpec

        dev = make_device()
        tl = Timeline(blocks={0})
        spec = MapReduceSpec(
            name="t", map_record=lambda k, v, e, c: e(k.to_bytes(), b"1")
        )
        inp = KeyValueSet([(b"record%03d" % i, b"") for i in range(64)])
        d_in = DeviceRecordSet.upload(dev.gmem, inp)
        rt = build_map_runtime(dev, spec, MemoryMode.SIO, d_in,
                               threads_per_block=128)
        dev.launch(map_kernel, grid=rt.grid, block=128,
                   smem_bytes=rt.layout.smem_bytes, args=(rt,), timeline=tl)
        polls = [e for e in tl.events if e.category == "poll"]
        assert polls  # helpers were parked at some point
