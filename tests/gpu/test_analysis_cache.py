"""Tests for the memoized access-pattern analyses.

The caches must be *invisible*: bit-identical results to the uncached
model functions, identical simulated cycles whether they start cold or
warm, and wholesale invalidation whenever the engine's timing
parameters change.
"""

import dataclasses

import pytest

from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu.analysis_cache import (
    AnalysisCache,
    cache_counters,
    caches,
    clear_all_caches,
    note_timing,
    totals,
)
from repro.gpu.banks import BANK_CACHE, conflict_degree, conflict_degree_cached
from repro.gpu.coalescing import (
    TXN_CACHE,
    scattered_transactions,
    scattered_transactions_cached,
)
from repro.gpu.config import DeviceConfig, TimingParams
from repro.workloads import WordCount


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Each test starts cold with zeroed counters."""
    clear_all_caches()
    for c in caches():
        c.reset_counters()
    yield
    clear_all_caches()


# ----------------------------------------------------------------------
# Exactness: cached == uncached, on a spread of patterns
# ----------------------------------------------------------------------

PATTERNS = [
    [(i * 4, 4) for i in range(16)],              # fully coalesced
    [(i * 64, 4) for i in range(16)],             # one txn per lane
    [(0, 4)] * 16,                                # all lanes same word
    [(i * 12 + 5, 8) for i in range(16)],         # misaligned stride
    [(1000 + i * 4, 2) for i in range(7)],        # partial warp, subword
    [(64 * (i % 3), 4) for i in range(16)],       # few segments, repeats
]


@pytest.mark.parametrize("accesses", PATTERNS)
def test_scattered_transactions_cached_exact(accesses):
    for seg in (32, 64, 128):
        assert scattered_transactions_cached(accesses, seg) == (
            scattered_transactions(accesses, seg)
        )


@pytest.mark.parametrize("shift_segs", [0, 1, 17, 1024])
def test_coalescing_shift_invariant_key_shares_entry(shift_segs):
    seg = 64
    base = [(i * 8, 4) for i in range(16)]
    shifted = [(a + shift_segs * seg, s) for a, s in base]
    first = scattered_transactions_cached(base, seg)
    h0, m0 = TXN_CACHE.hits, TXN_CACHE.misses
    assert scattered_transactions_cached(shifted, seg) == first
    # A whole-segment shift is the *same* normalized pattern: pure hit.
    assert (TXN_CACHE.hits, TXN_CACHE.misses) == (h0 + 1, m0)


def test_bank_conflict_cached_exact():
    patterns = [
        list(range(0, 64, 4)),        # stride-4 words: 4-way conflict
        list(range(16)),              # stride-1: conflict-free
        [0] * 16,                     # broadcast
        [i * 16 for i in range(16)],  # all one bank
        [7, 7, 23, 23, 39, 39],       # partial warp with repeats
    ]
    for words in patterns:
        assert conflict_degree_cached(words) == conflict_degree(words)


def test_bank_conflict_shift_invariance_hits():
    words = [i * 8 for i in range(16)]  # byte addresses of 4-byte words
    period = 64  # NUM_BANKS * BANK_WIDTH bytes
    first = conflict_degree_cached(words)
    h0 = BANK_CACHE.hits
    assert conflict_degree_cached([w + 5 * period for w in words]) == first
    assert BANK_CACHE.hits == h0 + 1


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------

def test_hit_miss_accounting():
    acc = [(i * 4, 4) for i in range(16)]
    assert (TXN_CACHE.hits, TXN_CACHE.misses) == (0, 0)
    scattered_transactions_cached(acc, 64)
    assert (TXN_CACHE.hits, TXN_CACHE.misses) == (0, 1)
    scattered_transactions_cached(acc, 64)
    scattered_transactions_cached(acc, 64)
    assert (TXN_CACHE.hits, TXN_CACHE.misses) == (2, 1)
    # A different segment size is a different pattern key.
    scattered_transactions_cached(acc, 128)
    assert (TXN_CACHE.hits, TXN_CACHE.misses) == (2, 2)
    ctrs = cache_counters()["coalescing.scattered"]
    assert ctrs["hits"] == 2 and ctrs["misses"] == 2
    assert ctrs["entries"] == 2
    th, tm = totals()
    assert th >= 2 and tm >= 2


def test_bounded_cache_flushes_wholesale():
    c = AnalysisCache("test.bounded", max_entries=4)
    for i in range(4):
        c.room()
        c.data[i] = i
    assert c.evictions == 0 and len(c.data) == 4
    c.room()
    assert c.evictions == 1 and len(c.data) == 0


def test_kernel_stats_surface_cache_counters():
    w = WordCount()
    inp = w.generate("small", seed=0)
    spec = w.spec_for_size("small", seed=0)
    res = run_job(spec, inp, mode=MemoryMode.SIO,
                  strategy=ReduceStrategy.TR, backend="sim")
    st = res.map_stats
    assert st.analysis_cache_misses > 0
    assert st.analysis_cache_hits > 0
    # Re-running the identical job hits the warm caches: by the second
    # launch the repetitive patterns are all resident.
    res2 = run_job(spec, inp, mode=MemoryMode.SIO,
                   strategy=ReduceStrategy.TR, backend="sim")
    st2 = res2.map_stats
    assert st2.analysis_cache_hits > st2.analysis_cache_misses
    assert st2.analysis_cache_hits > st.analysis_cache_hits


# ----------------------------------------------------------------------
# Invalidation
# ----------------------------------------------------------------------

def test_note_timing_invalidates_on_change():
    t1 = TimingParams()
    note_timing(t1)
    scattered_transactions_cached([(i * 4, 4) for i in range(16)], 64)
    assert len(TXN_CACHE.data) == 1
    # Same params (equal value): no flush.
    note_timing(TimingParams())
    assert len(TXN_CACHE.data) == 1
    # Different params: every registered cache is flushed.
    note_timing(dataclasses.replace(t1, txn_bytes=128))
    assert len(TXN_CACHE.data) == 0


def test_engine_construction_applies_note_timing():
    from repro.gpu.kernel import Device

    scattered_transactions_cached([(i * 4, 4) for i in range(16)], 64)
    assert len(TXN_CACHE.data) == 1
    cfg = DeviceConfig.small(1)
    cfg2 = dataclasses.replace(
        cfg, timing=dataclasses.replace(cfg.timing, global_latency=123.0)
    )

    def k(ctx):
        yield from ctx.compute(1)

    Device(cfg2).launch(k, grid=1, block=32)
    assert len(TXN_CACHE.data) == 0  # config change flushed the memo


# ----------------------------------------------------------------------
# Cycle identity: cold vs warm caches, observed vs fast event loop
# ----------------------------------------------------------------------

def _run_wc(**kw):
    w = WordCount()
    inp = w.generate("small", seed=0)
    spec = w.spec_for_size("small", seed=0)
    return run_job(spec, inp, mode=MemoryMode.SIO,
                   strategy=ReduceStrategy.TR, backend="sim", **kw)


def test_cold_and_warm_caches_give_identical_cycles():
    cold = _run_wc()
    warm = _run_wc()  # every pattern now hits
    assert warm.map_stats.analysis_cache_hits >= cold.map_stats.analysis_cache_hits
    assert cold.total_cycles == warm.total_cycles
    assert cold.timings.map == warm.timings.map
    assert cold.timings.reduce == warm.timings.reduce
    assert cold.output == warm.output


def test_observed_and_fast_event_loops_agree():
    """The tracer-enabled ('observed') event loop and the null-observer
    fast path must produce identical timing and outputs."""
    from repro.obs.tracer import Tracer

    fast = _run_wc()
    clear_all_caches()
    observed = _run_wc(tracer=Tracer())
    assert fast.total_cycles == observed.total_cycles
    assert fast.map_stats.cycles == observed.map_stats.cycles
    assert fast.map_stats.instructions == observed.map_stats.instructions
    assert fast.output == observed.output
