"""Golden-trace regression: the simulator's timing is part of the API.

The committed fixture ``wordcount_small.json`` pins cycle counts,
phase timings and kernel counters for one small wordcount run per
memory mode (plus Mars).  The test re-runs the simulator and compares
**exactly** — any drift is either a bug or an intended timing-model
change, and an intended change must regenerate the fixture
(``scripts/gen_golden_traces.py``) so the diff is reviewed, not
absorbed.

The collection logic lives in the generator script; importing it here
keeps the fixture writer and the checker from drifting apart.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = Path(__file__).resolve().parent / "wordcount_small.json"
DIST_FIXTURE = Path(__file__).resolve().parent / "dist_wordcount_small.json"

_spec = importlib.util.spec_from_file_location(
    "gen_golden_traces", ROOT / "scripts" / "gen_golden_traces.py")
gen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen)


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def current() -> dict:
    return gen.collect_golden()


def test_fixture_matches_pinned_workload(golden):
    assert golden["workload"] == gen.WORKLOAD


def test_all_modes_pinned(golden):
    assert sorted(golden["runs"]) == sorted(
        ["G", "GT", "SI", "SO", "SIO", "Mars"])


def test_input_identical(golden, current):
    assert current["input_records"] == golden["input_records"]


class TestDistSchedule:
    """The distributed scheduler's decisions are part of the API too:
    ``dist_wordcount_small.json`` pins every assignment, the scripted
    worker death and the retry target for a deterministic fault-
    injected run.  A scheduler change that moves a task shows up as a
    precise event diff, not as an unexplained flake."""

    @pytest.fixture(scope="class")
    def dist_golden(self) -> dict:
        with open(DIST_FIXTURE, encoding="utf-8") as fh:
            return json.load(fh)

    @pytest.fixture(scope="class")
    def dist_current(self) -> dict:
        return gen.collect_dist_golden()

    def test_fixture_matches_pinned_workload(self, dist_golden):
        want = dict(gen.DIST_WORKLOAD)
        got = dict(dist_golden["workload"])
        got.pop("fault", None)
        assert got == want

    def test_schedule_events_unchanged(self, dist_golden, dist_current):
        assert dist_current["events"] == dist_golden["events"], (
            "dist scheduling decisions drifted — if intended, "
            "regenerate the fixture with scripts/gen_golden_traces.py "
            "and review the diff")

    def test_counters_unchanged(self, dist_golden, dist_current):
        assert dist_current["counters"] == dist_golden["counters"]

    def test_result_shape_unchanged(self, dist_golden, dist_current):
        assert (dist_current["input_records"]
                == dist_golden["input_records"])
        assert (dist_current["output_records"]
                == dist_golden["output_records"])
        assert (dist_current["intermediate_count"]
                == dist_golden["intermediate_count"])


@pytest.mark.parametrize("mode", ["G", "GT", "SI", "SO", "SIO", "Mars"])
def test_trace_unchanged(golden, current, mode):
    want, got = golden["runs"][mode], current["runs"][mode]
    assert got["timings"] == want["timings"], (
        f"{mode}: phase cycle counts drifted — if intended, regenerate "
        f"the fixture with scripts/gen_golden_traces.py and review the "
        f"diff")
    assert got["intermediate_count"] == want["intermediate_count"]
    assert got["output_records"] == want["output_records"]
    for phase in ("map_stats", "reduce_stats"):
        for field, pinned in want[phase].items():
            assert got[phase][field] == pinned, (
                f"{mode}: {phase}.{field} drifted from pinned value")
        assert sorted(got[phase]) == sorted(want[phase])
