"""Golden-trace regression: the simulator's timing is part of the API.

The committed fixture ``wordcount_small.json`` pins cycle counts,
phase timings and kernel counters for one small wordcount run per
memory mode (plus Mars).  The test re-runs the simulator and compares
**exactly** — any drift is either a bug or an intended timing-model
change, and an intended change must regenerate the fixture
(``scripts/gen_golden_traces.py``) so the diff is reviewed, not
absorbed.

The collection logic lives in the generator script; importing it here
keeps the fixture writer and the checker from drifting apart.
"""

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURE = Path(__file__).resolve().parent / "wordcount_small.json"

_spec = importlib.util.spec_from_file_location(
    "gen_golden_traces", ROOT / "scripts" / "gen_golden_traces.py")
gen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gen)


@pytest.fixture(scope="module")
def golden() -> dict:
    with open(FIXTURE, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def current() -> dict:
    return gen.collect_golden()


def test_fixture_matches_pinned_workload(golden):
    assert golden["workload"] == gen.WORKLOAD


def test_all_modes_pinned(golden):
    assert sorted(golden["runs"]) == sorted(
        ["G", "GT", "SI", "SO", "SIO", "Mars"])


def test_input_identical(golden, current):
    assert current["input_records"] == golden["input_records"]


@pytest.mark.parametrize("mode", ["G", "GT", "SI", "SO", "SIO", "Mars"])
def test_trace_unchanged(golden, current, mode):
    want, got = golden["runs"][mode], current["runs"][mode]
    assert got["timings"] == want["timings"], (
        f"{mode}: phase cycle counts drifted — if intended, regenerate "
        f"the fixture with scripts/gen_golden_traces.py and review the "
        f"diff")
    assert got["intermediate_count"] == want["intermediate_count"]
    assert got["output_records"] == want["output_records"]
    for phase in ("map_stats", "reduce_stats"):
        for field, pinned in want[phase].items():
            assert got[phase][field] == pinned, (
                f"{mode}: {phase}.{field} drifted from pinned value")
        assert sorted(got[phase]) == sorted(want[phase])
