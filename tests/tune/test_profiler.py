"""Input profiler: sampling caps, stats, and the overhead guard."""

import struct
import time

from repro.framework import KeyValueSet
from repro.framework.api import MapReduceSpec
from repro.framework.job import run_job
from repro.gpu.config import DeviceConfig
from repro.tune.profiler import (
    SAMPLE_CAP_BYTES,
    SAMPLE_CAP_RECORDS,
    profile_input,
)


def word_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, struct.pack("<I", 1))


def sum_reduce(key, values, emit):
    total = 0
    for v in values:
        (x,) = struct.unpack("<I", v.to_bytes())
        total += x
    emit(key, struct.pack("<I", total))


def _spec(name="prof"):
    return MapReduceSpec(name=name, map_record=word_map,
                         reduce_record=sum_reduce)


class TestSamplingCaps:
    def test_record_cap(self):
        inp = KeyValueSet([(b"a b", b"")] * (SAMPLE_CAP_RECORDS + 500))
        stats = profile_input(_spec(), inp)
        assert stats.records == SAMPLE_CAP_RECORDS + 500
        assert stats.sampled <= SAMPLE_CAP_RECORDS

    def test_byte_cap(self):
        # 8 KiB records: the byte cap binds long before the record cap.
        inp = KeyValueSet([(b"k", b"v" * 8192)] * 1000)
        stats = profile_input(_spec(), inp)
        assert stats.sampled < 1000
        assert stats.sampled * 8193 <= SAMPLE_CAP_BYTES + 8193

    def test_empty_input(self):
        stats = profile_input(_spec(), KeyValueSet([]))
        assert stats.records == 0
        assert stats.sampled == 0
        assert stats.emissions_per_record == 0

    def test_extrapolates_counts(self):
        inp = KeyValueSet([(b"x y z", b"")] * 50)
        stats = profile_input(_spec(), inp)
        assert stats.emissions_per_record == 3.0

    def test_memoised_by_content(self):
        inp = KeyValueSet([(b"a b", b"")] * 50)
        first = profile_input(_spec(), inp)
        again = profile_input(_spec(), inp)
        assert again is first  # digest-keyed cache hit


class TestOverheadGuard:
    def test_autotune_overhead_under_5_percent(self):
        """mode="auto" on a tiny input stays within 5% of the wall
        time of running the exact configuration it picked.

        The guard pins the engineering that makes the tuner free-ish:
        the bounded sample profile (memoised by content digest) and
        the mtime-cached calibration parse.  Interleaved min-of-N
        keeps shared-runner jitter out of the comparison.
        """
        from repro.workloads import WordCount

        w = WordCount()
        inp = w.generate("small", seed=0, scale=0.2)
        spec = w.spec_for_size("small", seed=0, scale=0.2)
        cfg = DeviceConfig.small(2)
        first = run_job(spec, inp, mode="auto", strategy="TR", config=cfg)
        choice = first.map_stats.extra["tuner_choice"]
        tpb = int(choice.rsplit("@", 1)[1].split()[0])

        auto_walls, fixed_walls = [], []
        for _ in range(7):
            t0 = time.perf_counter()
            run_job(spec, inp, mode="auto", strategy="TR", config=cfg)
            auto_walls.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_job(spec, inp, mode=first.mode, strategy=first.strategy,
                    threads_per_block=tpb, config=cfg)
            fixed_walls.append(time.perf_counter() - t0)
        overhead = min(auto_walls) / min(fixed_walls) - 1.0
        assert overhead < 0.05, (
            f"tuner overhead {overhead:+.1%} (auto {min(auto_walls):.4f}s "
            f"vs fixed {min(fixed_walls):.4f}s for {choice})"
        )
