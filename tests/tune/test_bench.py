"""Autotune benchmark harness: matrix shape and gate logic."""

from repro.framework.modes import ReduceStrategy
from repro.tune.bench import (
    PER_CASE_BAR,
    bench_cases,
    check_report,
    render_report,
)
from repro.tune.synthetic import SYNTHETIC_CASES


def _report(*, ratio=1.0, tuned_total=100.0, mode_total=200.0):
    ok = ratio <= PER_CASE_BAR
    beats = tuned_total < mode_total
    return {
        "schema": 1,
        "per_case_bar": PER_CASE_BAR,
        "cases": [{
            "case": "uniform", "tuned_choice": "G/TR@64",
            "tuned_cycles": 100.0, "best_fixed": "G/TR@64",
            "best_fixed_cycles": 100.0 / ratio, "ratio_to_best": ratio,
        }],
        "totals": {"tuned": tuned_total,
                   "fixed_modes": {"G": mode_total}},
        "gates": {"per_case_within_bar": ok,
                  "tuned_beats_every_fixed_mode": beats},
    }


class TestMatrix:
    def test_covers_synthetics_and_real_workloads(self):
        names = [name for name, *_ in bench_cases()]
        for synth in SYNTHETIC_CASES:
            assert synth in names
        for code in ("WC", "KM", "HG", "LR"):
            assert code in names

    def test_cases_are_nonempty(self):
        for name, spec, inp, has_reduce in bench_cases():
            assert len(inp) > 0, name
            assert spec.map_record is not None
            if has_reduce:
                assert spec.reduce_record is not None


class TestGates:
    def test_clean_report_has_no_problems(self):
        assert check_report(_report()) == []

    def test_per_case_breach_is_reported(self):
        problems = check_report(_report(ratio=PER_CASE_BAR + 0.05))
        assert len(problems) == 1
        assert "uniform" in problems[0]

    def test_total_breach_is_reported(self):
        problems = check_report(_report(tuned_total=300.0))
        assert any("fixed mode G" in p for p in problems)

    def test_render_mentions_gate_state(self):
        assert "[OK]" in render_report(_report())
        assert "GATES FAILED" in render_report(_report(ratio=2.0))


class TestStrategies:
    def test_reduce_cases_sweep_both_strategies(self):
        from repro.tune.bench import _strategies

        assert _strategies(True) == (ReduceStrategy.TR, ReduceStrategy.BR)
        assert _strategies(False) == (None,)
