"""Calibration loop: corrections, history lookup, schema tolerance."""

import json
import os

from repro.framework.job import run_job
from repro.gpu.config import DeviceConfig
from repro.obs.ledger import SCHEMA, ledger_path, read_ledger
from repro.tune.calibrate import (
    CORRECTION_MAX,
    CORRECTION_MIN,
    MIN_SAMPLES,
    compute_corrections,
    load_calibration,
    lookup_history,
)
from repro.tune.synthetic import synthetic_case


def _tuned_rec(error, **kw):
    rec = {"tuned": True, "tuner_predicted_cost": 100.0,
           "tuner_error": error, "mode": "G", "strategy": "TR",
           "backend": "sim"}
    rec.update(kw)
    return rec


class TestCorrections:
    def test_geometric_mean_of_error_ratios(self):
        recs = [_tuned_rec(0.25), _tuned_rec(0.25)]
        corrections, samples = compute_corrections(recs)
        assert samples == 2
        assert abs(corrections["mode:G"] - 1.25) < 1e-9
        assert abs(corrections["strategy:TR"] - 1.25) < 1e-9
        assert abs(corrections["backend:sim"] - 1.25) < 1e-9

    def test_clamped_to_band(self):
        recs = [_tuned_rec(99.0)] * 3
        corrections, _ = compute_corrections(recs)
        assert corrections["mode:G"] == CORRECTION_MAX
        recs = [_tuned_rec(-0.99)] * 3
        corrections, _ = compute_corrections(recs)
        assert corrections["mode:G"] == CORRECTION_MIN

    def test_min_samples(self):
        corrections, samples = compute_corrections(
            [_tuned_rec(0.5)] * (MIN_SAMPLES - 1))
        assert corrections == {}
        assert samples == MIN_SAMPLES - 1

    def test_untuned_and_unmatched_units_ignored(self):
        recs = [
            {"tuned": False, "mode": "G"},                  # untuned
            _tuned_rec(None),                               # no error
            {"schema": 1, "mode": "SIO", "backend": "sim"}, # pre-tuner
        ]
        corrections, samples = compute_corrections(recs)
        assert corrections == {} and samples == 0


class TestLedgerSchema:
    def test_tuned_run_records_schema2_fields(self):
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2))
        (rec,) = read_ledger()
        assert rec["schema"] == SCHEMA
        assert rec["tuned"] is True
        assert rec["tuner_choice"]
        assert rec["tuner_predicted_cost"] > 0
        # sim run, cycles objective: units match => error recorded
        assert isinstance(rec["tuner_error"], float)

    def test_untuned_run_has_null_tuner_fields(self):
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="SIO", strategy="TR",
                config=DeviceConfig.small(2))
        (rec,) = read_ledger()
        assert rec["tuned"] is False
        assert rec["tuner_choice"] is None
        assert rec["tuner_predicted_cost"] is None
        assert rec["tuner_error"] is None

    def test_reader_tolerates_schema1_lines(self):
        """A ledger mixing pre-tuner (schema 1) and current lines must
        parse whole and calibrate from what each line has."""
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2))
        path = ledger_path()
        schema1 = {"schema": 1, "workload": "uniform", "mode": "SIO",
                   "strategy": "TR", "backend": "sim",
                   "sim_cycles": 123.0, "wall_s": 0.01}
        with open(path, "a") as f:
            f.write(json.dumps(schema1) + "\n")
            f.write("NOT JSON AT ALL\n")
        records = read_ledger()
        assert len(records) == 2  # malformed line skipped, both schemas in
        state = load_calibration()
        assert len(state.records) == 2
        assert state.samples <= 1  # only the tuned line can contribute

    def test_unmatched_units_leave_error_null(self):
        """A fast-backend tuned run carries a cycles prediction from
        the mode decision; the ledger must not fabricate an error from
        mismatched units (cycles predicted, wall measured)."""
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2), backend="fast")
        (rec,) = read_ledger()
        assert rec["tuned"] is True
        assert rec["tuner_error"] is None


class TestCalibrationCache:
    def test_reparses_when_ledger_grows(self):
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2))
        first = load_calibration()
        assert load_calibration() is first  # unchanged file: cache hit
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2))
        second = load_calibration()
        assert second is not first
        assert len(second.records) == len(first.records) + 1

    def test_missing_ledger_degrades_to_factory(self, tmp_path):
        state = load_calibration(str(tmp_path / "nope.jsonl"))
        assert state.records == []
        assert state.corrections == {}


class TestHistoryLookup:
    BASE = {"workload": "wc", "backend": "sim"}

    def test_exact_digest_beats_neighbour(self):
        recs = [
            dict(self.BASE, input_digest="aaa", records_in=100,
                 sim_cycles=50.0, mode="SO"),
            dict(self.BASE, input_digest="bbb", records_in=100,
                 sim_cycles=1.0, mode="SI"),
        ]
        hit = lookup_history(recs, "wc", "aaa", records_in=100)
        assert hit["mode"] == "SO"  # exact match wins despite higher cost

    def test_neighbour_within_size_factor(self):
        recs = [dict(self.BASE, input_digest="bbb", records_in=150,
                     sim_cycles=5.0, mode="SI")]
        assert lookup_history(recs, "wc", "zzz", records_in=100)
        assert lookup_history(recs, "wc", "zzz", records_in=10) is None
