"""mode="auto" must never change *what* a job computes.

The differential core of the tuner acceptance: on every backend, the
auto run's output is byte-identical to running the exact fixed
configuration the tuner chose, and the sim backend's cycle count
matches too (same config => same deterministic simulation).
"""

import pytest

from repro.framework.job import run_job
from repro.framework.modes import MemoryMode
from repro.gpu.config import DeviceConfig
from repro.tune.synthetic import synthetic_case
from repro.workloads import KMeans, WordCount

CFG = DeviceConfig.small(2)

BACKENDS = ["sim", "fast", "parallel:2", "columnar"]


def _sorted(kvs):
    return sorted(zip(kvs.keys, kvs.values))


def _tpb(result):
    choice = result.map_stats.extra["tuner_choice"]
    return int(choice.rsplit("@", 1)[1].split()[0])


@pytest.mark.parametrize("backend", BACKENDS)
class TestAutoParity:
    def _assert_parity(self, spec, inp, backend, **kwargs):
        auto = run_job(spec, inp, mode="auto", config=CFG,
                       backend=backend, **kwargs)
        assert isinstance(auto.mode, MemoryMode)
        fixed = run_job(spec, inp, mode=auto.mode, strategy=auto.strategy,
                        threads_per_block=_tpb(auto), config=CFG,
                        backend=backend, **{k: v for k, v in kwargs.items()
                                            if k != "strategy"})
        assert _sorted(auto.output) == _sorted(fixed.output)
        if backend == "sim":
            assert auto.timings.total == fixed.timings.total
        return auto

    def test_wordcount(self, backend):
        w = WordCount()
        inp = w.generate("small", seed=0, scale=0.2)
        spec = w.spec_for_size("small", seed=0, scale=0.2)
        self._assert_parity(spec, inp, backend, strategy="auto")

    def test_kmeans(self, backend):
        w = KMeans()
        inp = w.generate("small", seed=1, scale=0.2)
        spec = w.spec_for_size("small", seed=1, scale=0.2)
        self._assert_parity(spec, inp, backend, strategy="auto")

    def test_synthetic_hotkey(self, backend):
        spec, inp = synthetic_case("hotkey", seed=2, scale=0.5)
        self._assert_parity(spec, inp, backend, strategy="auto")

    def test_map_only_stays_map_only(self, backend):
        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        auto = run_job(spec, inp, mode="auto", strategy=None, config=CFG,
                       backend=backend)
        assert auto.strategy is None


class TestCrossBackendAgreement:
    def test_all_backends_pick_the_same_config(self):
        """The mode label a backend reports under auto comes from one
        shared decision layer — no backend-specific drift."""
        w = WordCount()
        inp = w.generate("small", seed=0, scale=0.2)
        spec = w.spec_for_size("small", seed=0, scale=0.2)
        results = [
            run_job(spec, inp, mode="auto", strategy="auto", config=CFG,
                    backend=b)
            for b in BACKENDS
        ]
        choices = {r.map_stats.extra["tuner_choice"] for r in results}
        assert len(choices) == 1, choices
        outputs = {tuple(_sorted(r.output)) for r in results}
        assert len(outputs) == 1
