"""Decision layer: golden choices, sentinel semantics, history."""

import json
import os

import pytest

from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu.config import DeviceConfig
from repro.obs.ledger import digest_input
from repro.tune.calibrate import CalibrationState
from repro.tune.decide import (
    TPB_CANDIDATES,
    autotune_enabled,
    decide_execution,
    decide_modes,
)
from repro.tune.synthetic import SYNTHETIC_CASES, synthetic_case

CFG = DeviceConfig.small(4)

#: The factory-calibrated model's pick per synthetic shape at
#: DeviceConfig.small(4) — the golden decision table.  Pinned against
#: the measured exhaustive sweep in BENCH_autotune.json: every one of
#: these choices is within the 10% per-case bar of the measured best.
#: A constants change that silently degrades a decision fails here
#: first (regenerate with scripts/calibrate_tuner.py, then re-check
#: the bench gates before re-pinning).
GOLDEN = {
    "uniform": "GT/TR@64",
    "hotkey": "G/BR@64",
    "widevalue": "SI/BR@64",
    "raggedkey": "G/BR@64",
    "numfixed": "G/BR@64",
}

FRESH = CalibrationState()  # no ledger: factory constants, no history


class TestGoldenTable:
    @pytest.mark.parametrize("name", sorted(SYNTHETIC_CASES))
    def test_synthetic_choice(self, name):
        spec, inp = synthetic_case(name, seed=0)
        decision = decide_modes(spec, inp, config=CFG, calibration=FRESH)
        assert decision.choice == GOLDEN[name]
        assert decision.source == "model"
        assert decision.objective == "cycles"
        assert decision.predicted_cost > 0

    def test_choices_agree_with_committed_bench(self):
        """The committed artefact's tuned choices are this model's."""
        path = os.path.join(os.path.dirname(__file__), "..", "..",
                            "BENCH_autotune.json")
        with open(path) as f:
            doc = json.load(f)
        by_case = {c["case"]: c for c in doc["cases"]}
        for name, choice in GOLDEN.items():
            assert by_case[name]["tuned_choice"] == choice
            assert by_case[name]["ratio_to_best"] <= doc["per_case_bar"]
        assert doc["gates"] == {"per_case_within_bar": True,
                                "tuned_beats_every_fixed_mode": True}


class TestSentinels:
    def test_strategy_none_stays_map_only(self):
        spec, inp = synthetic_case("uniform", seed=0)
        decision = decide_modes(spec, inp, config=CFG, strategy=None,
                                calibration=FRESH)
        assert decision.strategy is None  # tuner never adds a Reduce

    def test_pinned_strategy_is_kept(self):
        spec, inp = synthetic_case("hotkey", seed=0)
        decision = decide_modes(spec, inp, config=CFG,
                                strategy=ReduceStrategy.TR,
                                calibration=FRESH)
        assert decision.strategy is ReduceStrategy.TR

    def test_pinned_tpb_is_kept(self):
        spec, inp = synthetic_case("uniform", seed=0)
        decision = decide_modes(spec, inp, config=CFG,
                                threads_per_block=256, calibration=FRESH)
        assert decision.threads_per_block == 256

    def test_open_tpb_explores_candidates(self):
        spec, inp = synthetic_case("uniform", seed=0)
        decision = decide_modes(spec, inp, config=CFG, calibration=FRESH)
        assert decision.threads_per_block in TPB_CANDIDATES

    def test_br_never_paired_with_gt(self):
        for name in SYNTHETIC_CASES:
            spec, inp = synthetic_case(name, seed=0)
            decision = decide_modes(spec, inp, config=CFG,
                                    strategy=ReduceStrategy.BR,
                                    calibration=FRESH)
            assert decision.mode is not MemoryMode.GT


class TestExecution:
    def test_decides_backend_and_modes(self):
        spec, inp = synthetic_case("uniform", seed=0)
        decision = decide_execution(spec, inp, config=CFG,
                                    calibration=FRESH, cpu_count=4)
        assert decision.objective == "wall"
        assert decision.backend in ("fast", "parallel", "columnar")
        assert isinstance(decision.mode, MemoryMode)
        assert decision.summary()["choice"] == decision.choice

    def test_large_intermediate_gets_spill_budget(self):
        spec, inp = synthetic_case("widevalue", seed=0)
        decision = decide_execution(spec, inp, config=CFG,
                                    calibration=FRESH, cpu_count=4,
                                    memory_ceiling=1024)
        assert decision.store == "spill"
        assert decision.memory_budget == 1024


class TestHistoryOverride:
    def _swept_records(self, spec, inp):
        digest = digest_input(inp)
        base = {
            "workload": spec.name, "input_digest": digest,
            "records_in": len(inp), "backend": "sim",
        }
        return [
            dict(base, mode="SO", strategy="TR", sim_cycles=9000.0),
            dict(base, mode="SI", strategy="BR", sim_cycles=100.0),
        ]

    def test_measured_winner_overrides_model(self):
        spec, inp = synthetic_case("uniform", seed=0)
        cal = CalibrationState(records=self._swept_records(spec, inp))
        decision = decide_modes(spec, inp, config=CFG, calibration=cal)
        assert decision.source == "history"
        assert decision.mode is MemoryMode.SI
        assert decision.strategy is ReduceStrategy.BR

    def test_single_config_is_not_a_sweep(self):
        spec, inp = synthetic_case("uniform", seed=0)
        cal = CalibrationState(
            records=self._swept_records(spec, inp)[:1])
        decision = decide_modes(spec, inp, config=CFG, calibration=cal)
        assert decision.source == "model"


class TestEnv:
    def test_truthy_values(self):
        assert autotune_enabled({"REPRO_AUTOTUNE": "1"})
        assert autotune_enabled({"REPRO_AUTOTUNE": "on"})
        assert not autotune_enabled({"REPRO_AUTOTUNE": "0"})
        assert not autotune_enabled({})
