"""CLI wiring: --autotune / --mode on both drivers, report --tuner.

The friendly exit-2 paths all route through the one central name
validator (``repro.framework.modes.resolve_*_name``) — these tests pin
that both CLIs actually use it, and that conflicting flags fail fast
instead of running a mistuned job.
"""

import pytest

from repro.analysis.cli import main as bench_main
from repro.analysis.validation import validate_workload
from repro.gpu.config import DeviceConfig
from repro.obs.cli import main as trace_main
from repro.obs.report_cli import main as report_main
from repro.workloads import WordCount

TRACE_ARGS = ["wordcount", "--size", "small", "--mps", "2", "--quiet"]


def _code(result):
    return result if isinstance(result, int) else 0


class TestTraceCli:
    def test_autotune_runs_and_reports_choice(self, tmp_path, capsys):
        rc = trace_main(TRACE_ARGS + ["--autotune",
                                      "--out", str(tmp_path)])
        assert _code(rc) == 0
        text = capsys.readouterr().out
        assert "tuner" in text or (tmp_path / "metrics.json").exists()

    def test_autotune_conflicts_with_fixed_mode(self, capsys):
        with pytest.raises(SystemExit) as exc:
            trace_main(TRACE_ARGS + ["--autotune", "--mode", "SIO"])
        assert exc.value.code == 2
        assert "--autotune" in capsys.readouterr().err

    def test_unknown_mode_exits_2_with_friendly_message(self, capsys):
        with pytest.raises(SystemExit) as exc:
            trace_main(TRACE_ARGS + ["--mode", "TURBO"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "unknown memory mode" in err and "SIO" in err

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            trace_main(TRACE_ARGS + ["--mode", "SIO",
                                     "--strategy", "WAT"])
        assert exc.value.code == 2
        assert "unknown reduce strategy" in capsys.readouterr().err


class TestBenchCli:
    def test_autotune_conflicts_with_fixed_mode(self, capsys):
        rc = bench_main(["validate", "--autotune", "--mode", "SIO"])
        assert rc == 2
        assert "--autotune" in capsys.readouterr().err

    def test_unknown_mode_exits_2(self, capsys):
        rc = bench_main(["validate", "--mode", "TURBO"])
        assert rc == 2
        assert "unknown memory mode" in capsys.readouterr().err

    def test_mode_restricted_to_validate(self, capsys):
        rc = bench_main(["table2", "--mode", "G"])
        assert rc == 2

    def test_validate_auto_matrix_passes(self, capsys):
        rc = bench_main(["validate", "--autotune", "--workload", "WC",
                         "--mps", "2"])
        assert _code(rc) == 0
        out = capsys.readouterr().out
        assert "auto>" in out and "FAIL" not in out


class TestValidationMode:
    def test_single_mode_restricts_matrix(self):
        rep = validate_workload(WordCount(), config=DeviceConfig.small(2),
                                mode="SO")
        assert rep.passed
        assert {c.mode for c in rep.cases} == {"SO"}

    def test_auto_mode_labels_resolution(self):
        rep = validate_workload(WordCount(), config=DeviceConfig.small(2),
                                mode="auto")
        assert rep.passed
        assert all(c.mode.startswith("auto>") for c in rep.cases)


class TestReportTuner:
    def test_tuner_section_renders_choices(self, capsys):
        from repro.framework.job import run_job
        from repro.tune.synthetic import synthetic_case

        spec, inp = synthetic_case("uniform", seed=0, scale=0.3)
        run_job(spec, inp, mode="auto", strategy="auto",
                config=DeviceConfig.small(2))
        run_job(spec, inp, mode="SIO", strategy="TR",
                config=DeviceConfig.small(2))
        assert report_main(["--tuner"]) == 0
        out = capsys.readouterr().out
        assert "1 autotuned run(s)" in out
        assert "@" in out  # the choice label
        assert "mean |error|" in out

    def test_tuner_empty_ledger_message(self, capsys):
        assert report_main(["--tuner"]) == 0
        assert "no autotuned runs" in capsys.readouterr().out
