"""Wire protocol: frame codec round-trips and the incremental reader."""

import socket

import pytest

from repro.dist.wire import (
    MAX_FRAME,
    ConnectionClosed,
    FrameReader,
    decode,
    encode,
    recv_msg,
    send_msg,
)


class TestCodec:
    def test_round_trip_scalars(self):
        for msg in (None, True, 1, -7, 3.5, "hé", [], {}, [1, "a", None]):
            assert decode(encode(msg)[4:]) == msg

    def test_round_trip_bytes(self):
        msg = {"k": b"\x00\xffbin", "nested": [b"", {"v": b"\x80"}]}
        assert decode(encode(msg)[4:]) == msg

    def test_round_trip_pairs_payload(self):
        pairs = [[b"key1", b"\x01\x00"], [b"key2", b"\xfe"]]
        out = decode(encode({"pairs": pairs})[4:])
        assert out["pairs"] == pairs
        assert all(isinstance(k, bytes) for k, _ in out["pairs"])

    def test_tuple_encodes_as_list(self):
        assert decode(encode((1, 2))[4:]) == [1, 2]

    def test_memoryview_and_bytearray(self):
        msg = [bytearray(b"ab"), memoryview(b"cd")]
        assert decode(encode(msg)[4:]) == [b"ab", b"cd"]

    def test_length_prefix(self):
        frame = encode({"a": 1})
        length = int.from_bytes(frame[:4], "big")
        assert length == len(frame) - 4


class TestFrameReader:
    def test_split_feeds(self):
        """Frames arriving one byte at a time still decode exactly."""
        frames = [encode({"n": i, "b": bytes([i])}) for i in range(3)]
        blob = b"".join(frames)
        r = FrameReader()
        got = []
        for i in range(len(blob)):
            r.feed(blob[i:i + 1])
            got.extend(r.frames())
        assert got == [{"n": i, "b": bytes([i])} for i in range(3)]
        assert r.pending_bytes == 0

    def test_many_frames_one_feed(self):
        r = FrameReader()
        r.feed(b"".join(encode(i) for i in range(10)))
        assert list(r.frames()) == list(range(10))

    def test_partial_frame_stays_buffered(self):
        r = FrameReader()
        frame = encode({"x": "y"})
        r.feed(frame[:-1])
        assert list(r.frames()) == []
        assert r.pending_bytes == len(frame) - 1
        r.feed(frame[-1:])
        assert list(r.frames()) == [{"x": "y"}]

    def test_bad_length_raises(self):
        r = FrameReader()
        r.feed((MAX_FRAME + 1).to_bytes(4, "big"))
        with pytest.raises(ConnectionClosed):
            list(r.frames())


class TestSocketRoundTrip:
    def test_send_recv(self):
        a, b = socket.socketpair()
        try:
            send_msg(a, {"hello": b"world"})
            send_msg(a, [1, 2])
            assert recv_msg(b) == {"hello": b"world"}
            assert recv_msg(b) == [1, 2]
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises(self):
        a, b = socket.socketpair()
        try:
            frame = encode({"x": 1})
            a.sendall(frame[:3])
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_msg(b)
        finally:
            b.close()

    def test_clean_eof_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(ConnectionClosed):
                recv_msg(b)
        finally:
            b.close()
