"""Fault-injection matrix: every scripted failure mode must leave the
distributed backend's output byte-identical to the fast backend, with
exactly-once shard accounting.

The exactly-once proof reads the coordinator's event log: every shard
of every phase has exactly one accepted ``complete`` event, whatever
kills, drops, retries and speculative duplicates happened around it —
late twins surface as ``duplicate`` events and are never merged.  The
straggler case doubles as the duplicate-completion fixture: the
scripted delay forces a speculative re-execution, so the same shard
really does finish twice and the dedupe path is exercised for real,
not hypothetically.
"""

from collections import Counter

import pytest

from repro.backend import DistributedBackend
from repro.dist import FaultPlan
from repro.errors import FrameworkError
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig
from repro.workloads import ALL_WORKLOADS

CFG = DeviceConfig.small(2)

#: Small but non-trivial input: enough records that kill thresholds
#: fire mid-phase and the map has real task granularity.
_WC = [cls for cls in ALL_WORKLOADS if cls().code == "WC"][0]()
INP = _WC.generate("small", seed=11, scale=0.3)
SPEC = _WC.spec_for_size("small", seed=11, scale=0.3)

KWARGS = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.TR, config=CFG,
              threads_per_block=64)

FAST = run_job(SPEC, INP, backend="fast", **KWARGS)


def _ident_spec():
    from repro.framework.api import MapReduceSpec

    def ident(key, value, emit, const):
        emit(key.to_bytes(), value.to_bytes())

    return MapReduceSpec(name="ident", map_record=ident)


def _run_dist(plan, *, split_bytes=512, deterministic=False,
              min_straggle_s=None, **extra):
    backend = DistributedBackend(
        workers=2, min_records=0, split_bytes=split_bytes,
        fault_plan=plan, deterministic=deterministic,
        min_straggle_s=min_straggle_s,
    )
    result = run_job(SPEC, INP, backend=backend, **dict(KWARGS, **extra))
    return backend, result


def _assert_exactly_once(events):
    """Each (phase, shard) pair has exactly one accepted completion."""
    completes = Counter(
        (e.phase, e.shard) for e in events if e.kind == "complete"
    )
    assert completes, "no completions recorded"
    over = {k: n for k, n in completes.items() if n != 1}
    assert not over, f"shards completed != once: {over}"
    # Everything ever assigned was eventually completed.
    assigned = {(e.phase, e.shard) for e in events if e.kind == "assign"}
    assert {k for k in assigned} == set(completes)


KILL_MATRIX = [
    pytest.param(FaultPlan.kill(0, 30), id="kill-w0"),
    pytest.param(FaultPlan.kill(1, 30), id="kill-w1"),
    pytest.param(FaultPlan.kill(1, 80, phase="map"), id="kill-w1-map"),
    pytest.param(FaultPlan.kill(0, 400, phase="reduce"),
                 id="kill-w0-reduce"),
    pytest.param(FaultPlan.drop(0, 25), id="drop-w0"),
    pytest.param(FaultPlan.drop(1, 60), id="drop-w1"),
    pytest.param(FaultPlan.kill(0, 20) + FaultPlan.kill(1, 40),
                 id="kill-both-respawn"),
    pytest.param(FaultPlan.kill(0, 15) + FaultPlan.drop(1, 90),
                 id="kill-and-drop"),
]


@pytest.mark.parametrize("plan", KILL_MATRIX)
def test_worker_death_byte_identical(plan):
    backend, result = _run_dist(plan)
    assert result.output == FAST.output
    assert result.intermediate_count == FAST.intermediate_count
    _assert_exactly_once(backend.last_events)
    c = backend.last_counters
    assert c["worker_deaths"] >= 1
    assert c["retries"] >= 1


def test_double_death_respawns():
    """Killing every worker forces a respawned replacement with a
    fresh index (fresh fault state), and the job still finishes."""
    backend, result = _run_dist(FaultPlan.kill(0, 10) + FaultPlan.kill(1, 10))
    assert result.output == FAST.output
    assert backend.last_counters["respawns"] >= 1
    assert backend.last_counters["worker_deaths"] >= 2
    respawned = [e for e in backend.last_events if e.kind == "respawn"]
    # Replacement indices start past the original worker range.
    assert all(e.worker >= 2 for e in respawned)
    _assert_exactly_once(backend.last_events)


def test_straggler_speculation_and_duplicate_dedupe():
    """The duplicate-completion fixture: a scripted delay makes shard 3
    a straggler; the coordinator speculates a duplicate, both attempts
    eventually reply, exactly one wins."""
    # deterministic=True pins shard 3 (attempt 0) to worker 1.
    plan = FaultPlan.delay(1, 1.0, shard=3, phase="map")
    backend, result = _run_dist(plan, split_bytes=4096,
                                deterministic=True, min_straggle_s=0.15)
    assert result.output == FAST.output
    c = backend.last_counters
    assert c["speculated"] >= 1, "delay never triggered speculation"
    assert c["duplicates"] >= 1, "the losing attempt never completed"
    assert c["worker_deaths"] == 0
    _assert_exactly_once(backend.last_events)
    spec_events = [e for e in backend.last_events if e.kind == "speculate"]
    assert spec_events[0].shard == 3
    dup_events = [e for e in backend.last_events if e.kind == "duplicate"]
    assert any(e.shard == 3 for e in dup_events)


def test_kill_under_spill_store():
    """A killed attempt leaves partial run files; the retry's runs are
    attempt-prefixed, so the merge never sees the corpse's output."""
    backend, result = _run_dist(FaultPlan.kill(1, 60), store="spill",
                                memory_budget=512,
                                strategy=ReduceStrategy.BR)
    fast_spill = run_job(SPEC, INP, backend="fast", store="spill",
                         memory_budget=512,
                         **dict(KWARGS, strategy=ReduceStrategy.BR))
    assert result.output == fast_spill.output
    assert backend.last_counters["worker_deaths"] >= 1
    assert result.reduce_stats.extra.get("spill_runs", 0) > 0
    _assert_exactly_once(backend.last_events)


def test_delay_without_speculation_room_still_correct():
    """A straggler with no idle worker to speculate on just finishes
    late — slower, never wrong."""
    plan = FaultPlan.delay(0, 0.4, phase="reduce")
    backend, result = _run_dist(plan, min_straggle_s=10.0)
    assert result.output == FAST.output
    assert backend.last_counters["speculated"] == 0
    _assert_exactly_once(backend.last_events)


def test_fault_on_unused_worker_is_harmless():
    """A plan scripted for a worker index that never exists (dist:2,
    fault on worker 7) must not perturb the run."""
    backend, result = _run_dist(FaultPlan.kill(7, 1))
    assert result.output == FAST.output
    assert backend.last_counters["worker_deaths"] == 0


def test_seeded_chaos_plans_byte_identical():
    """A slice of the chaos-fuzz ingredient inline: seeded one-kill
    plans across several seeds, each byte-identical to fast."""
    for seed in range(6):
        backend, result = _run_dist(FaultPlan.seeded(seed, workers=2,
                                                     max_records=64))
        assert result.output == FAST.output, f"seed {seed} diverged"
        _assert_exactly_once(backend.last_events)


def test_stale_reply_from_prior_phase_is_dropped():
    """A speculation loser can still be executing when ``run_phase``
    returns.  In a streamed job the next batch's map phase has the
    same name and renumbers shards from 0 — only the epoch fence keeps
    the loser's late reply (old payload!) from being accepted as the
    new phase's shard result."""
    from repro.dist.coordinator import Cluster

    # deterministic placement: shard 0 attempt 0 -> worker 0, which is
    # scripted to sit on every map reply for 0.6s.
    cluster = Cluster(2, FaultPlan.delay(0, 0.6, phase="map"),
                      deterministic=True, min_straggle_s=0.1)
    cluster.start(_ident_spec(), None, False)
    try:
        r1 = cluster.run_phase("map", [(0, {"pairs": [[b"k1", b"v1"]]})])
        # The backup copy on worker 1 won; worker 0 is still sleeping
        # on the phase-1 task when the next phase starts.
        assert cluster.counters["speculated"] == 1
        r2 = cluster.run_phase("map", [(0, {"pairs": [[b"k2", b"v2"]]})])
    finally:
        cluster.shutdown()
    # Each phase accepted exactly its own shard 0, and phase 2's holds
    # phase 2's payload, not the stale one.
    assert set(r1) == {0} and set(r2) == {0}
    assert [tuple(p) for p in r1[0]["pairs"]] == [(b"k1", b"v1")]
    assert [tuple(p) for p in r2[0]["pairs"]] == [(b"k2", b"v2")]
    # The phase-1 loser's late reply surfaced as a duplicate, never
    # merged into phase 2.
    assert cluster.counters["duplicates"] >= 1
    dup = [e for e in cluster.events if e.kind == "duplicate"]
    assert dup, "the stale reply was never seen as a duplicate"


def test_speculation_respects_max_attempts():
    """The backup copy runs as attempt+1, so with the ceiling at 1 a
    straggler must never be speculated — it just finishes late."""
    from repro.dist.coordinator import Cluster

    cluster = Cluster(2, FaultPlan.delay(0, 0.4, phase="map"),
                      deterministic=True, min_straggle_s=0.05,
                      max_attempts=1)
    cluster.start(_ident_spec(), None, False)
    try:
        r = cluster.run_phase("map", [(0, {"pairs": [[b"k", b"v"]]})])
    finally:
        cluster.shutdown()
    assert [tuple(p) for p in r[0]["pairs"]] == [(b"k", b"v")]
    assert cluster.counters["speculated"] == 0


def test_twin_attempt_spill_runs_never_collide(tmp_path):
    """A speculated copy and a death-requeued retry can share
    (shard, attempt); the coordinator's per-dispatch seq token keeps
    their spill run files apart, so the loser's writes can never
    corrupt the accepted attempt's runs."""
    from repro.dist import worker as W

    W.configure(SPEC, None, False)
    base = {"shard": 0, "attempt": 1, "epoch": 1,
            "pairs": [[k, v] for k, v in zip(INP.keys, INP.values)],
            "spill": [str(tmp_path), 64]}
    r1 = W._run_map(dict(base, seq=7), W._FaultState(()))
    r2 = W._run_map(dict(base, seq=8), W._FaultState(()))
    runs1, runs2 = set(r1["spilled"]["runs"]), set(r2["spilled"]["runs"])
    assert runs1 and runs2, "the tiny budget should have forced runs"
    assert not runs1 & runs2, "twin attempts shared spill file names"


def test_shard_exhausting_attempts_fails_loudly():
    """A shard that dies on every worker (phase-wide kill threshold of
    1 record on both workers, and on every respawn... impossible to
    finish only if the plan covers respawns too — so instead prove the
    max-attempts guard directly with a cluster-level unit)."""
    from collections import deque

    from repro.dist.coordinator import Cluster, _Task

    cluster = Cluster(2, max_attempts=2)
    cluster._started = True  # bypass start(): no processes needed
    task = _Task("map", 0, 1, {})

    class _P:
        def join(self, timeout=None):
            return None

    class _H:
        idx = 0
        alive = True
        sock = None
        proc = _P()
        task = None

    h = _H()
    h.task = task
    cluster._handles[0] = h

    # The retry would be attempt 2 >= max_attempts -> FrameworkError.
    with pytest.raises(FrameworkError, match="giving up"):
        cluster._on_worker_death(h, "map", deque(), {})
