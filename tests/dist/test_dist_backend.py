"""DistributedBackend plumbing: registry, env wiring, split sizing,
FaultPlan units, telemetry, and the close()-reaps-everything contract."""

import multiprocessing
import os

import pytest

from repro.backend import BACKENDS, DistributedBackend, get_backend
from repro.backend.distributed import (
    DEFAULT_SPLIT_BYTES,
    SPLIT_BYTES_ENV,
    resolve_split_bytes,
)
from repro.dist import FaultPlan, WorkerFault
from repro.errors import FrameworkError
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.framework.api import MapReduceSpec
from repro.framework.records import KeyValueSet
from repro.gpu import DeviceConfig

CFG = DeviceConfig.small(2)


def _ident_spec(reduce_fn=None):
    def ident(key, value, emit, const):
        emit(key.to_bytes(), value.to_bytes())

    return MapReduceSpec(name="ident", map_record=ident,
                         reduce_record=reduce_fn)


def _count_spec():
    def tokens(key, value, emit, const):
        for tok in value.to_bytes().split():
            emit(tok, b"\x01")

    def count(key, values, emit, const):
        emit(key.to_bytes(), len(values).to_bytes(4, "little"))

    return MapReduceSpec(name="count", map_record=tokens,
                         reduce_record=count)


def _words(n=120):
    inp = KeyValueSet()
    for i in range(n):
        inp.append(i.to_bytes(4, "little"),
                   f"alpha beta w{i % 7} gamma".encode())
    return inp


class TestRegistryAndEnv:
    def test_dist_registered(self):
        assert "dist" in BACKENDS
        assert isinstance(get_backend("dist"), DistributedBackend)

    def test_dist_n_pins_workers(self):
        b = get_backend("dist:3")
        assert isinstance(b, DistributedBackend)
        assert b.workers == 3

    def test_dist_bad_counts_rejected(self):
        with pytest.raises(FrameworkError):
            get_backend("dist:0")
        with pytest.raises(FrameworkError):
            get_backend("dist:x")
        with pytest.raises(FrameworkError):
            DistributedBackend(workers=0)

    def test_env_selects_dist(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "dist:2")
        b = get_backend(None)
        assert isinstance(b, DistributedBackend)
        assert b.workers == 2

    def test_split_bytes_env(self, monkeypatch):
        monkeypatch.delenv(SPLIT_BYTES_ENV, raising=False)
        assert resolve_split_bytes() == DEFAULT_SPLIT_BYTES
        monkeypatch.setenv(SPLIT_BYTES_ENV, "4096")
        assert resolve_split_bytes() == 4096
        assert DistributedBackend(workers=2).split_bytes == 4096
        monkeypatch.setenv(SPLIT_BYTES_ENV, "bogus")
        with pytest.raises(FrameworkError):
            resolve_split_bytes()
        monkeypatch.setenv(SPLIT_BYTES_ENV, "0")
        with pytest.raises(FrameworkError):
            resolve_split_bytes()


class TestFaultPlanUnits:
    def test_compose_and_query(self):
        plan = FaultPlan.kill(0, 5) + FaultPlan.delay(1, 0.5, shard=2)
        assert bool(plan)
        assert len(plan.faults) == 2
        assert plan.for_worker(0)[0].kind == "kill"
        assert plan.for_worker(1)[0].kind == "delay"
        assert plan.for_worker(9) == ()
        assert not FaultPlan.none()

    def test_seeded_is_deterministic(self):
        a, b = FaultPlan.seeded(42), FaultPlan.seeded(42)
        assert a == b
        assert a.faults[0].kind == "kill"
        assert 0 <= a.faults[0].worker < 2
        assert a.faults[0].after_records >= 1
        # Different seeds eventually differ.
        assert any(FaultPlan.seeded(s) != a for s in range(20))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            WorkerFault(worker=0, kind="explode")

    def test_wire_round_trip(self):
        f = WorkerFault(worker=1, kind="delay", seconds=0.25, shard=3,
                        phase="map")
        assert WorkerFault.from_wire(f.to_wire()) == f

    def test_describe(self):
        docs = (FaultPlan.kill(1, 7) + FaultPlan.drop(0, 3)).describe()
        assert [d["kind"] for d in docs] == ["kill", "drop"]


class TestSplitSizing:
    def test_splits_cover_and_respect_limit(self):
        inp = KeyValueSet()
        for i in range(40):
            inp.append(b"k" * 4, b"v" * 12)  # record_cost = 32 each
        b = DistributedBackend(workers=2, split_bytes=100)
        slices = b._split_slices(inp)
        # Contiguous cover of [0, 40).
        assert slices[0][0] == 0 and slices[-1][1] == 40
        for (_, hi), (lo2, _) in zip(slices, slices[1:]):
            assert hi == lo2
        # 32 bytes/record under a 100-byte limit -> 3 records per split.
        assert all(hi - lo <= 3 for lo, hi in slices)
        assert len(slices) == 14

    def test_oversized_record_gets_own_split(self):
        inp = KeyValueSet()
        inp.append(b"a", b"x" * 500)
        inp.append(b"b", b"y")
        b = DistributedBackend(workers=2, split_bytes=64)
        assert b._split_slices(inp) == [(0, 1), (1, 2)]

    def test_empty_input(self):
        b = DistributedBackend(workers=2)
        assert b._split_slices(KeyValueSet()) == [(0, 0)]


class TestExecutionPlumbing:
    kwargs = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                  config=CFG, threads_per_block=64)

    def test_matches_fast_and_reports_telemetry(self):
        spec, inp = _count_spec(), _words()
        fast = run_job(spec, inp, backend="fast", **self.kwargs)
        b = DistributedBackend(workers=2, min_records=0, split_bytes=512)
        dist = run_job(spec, inp, backend=b, **self.kwargs)
        assert dist.output == fast.output
        assert dist.worker_profiles, "dist run must ship shard profiles"
        phases = {p.phase for p in dist.worker_profiles}
        assert phases == {"map", "reduce"}
        assert dist.straggler is not None
        assert dist.map_stats.extra["dist_tasks"] >= 2
        assert dist.reduce_stats.extra["dist_tasks"] >= 1
        assert b.last_counters["map_tasks"] >= 2

    def test_min_records_fallback_runs_in_process(self):
        spec, inp = _count_spec(), _words(20)
        fast = run_job(spec, inp, backend="fast", **self.kwargs)
        b = DistributedBackend(workers=2)  # default min_records = 2048
        dist = run_job(spec, inp, backend=b, **self.kwargs)
        assert dist.output == fast.output
        assert b.last_counters == {}  # no cluster was ever started
        assert dist.map_stats.extra.get("dist_tasks") is None

    def test_ledger_records_dist(self, tmp_path, monkeypatch):
        from repro.obs.ledger import LEDGER_NAME, read_ledger

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
        b = DistributedBackend(workers=2, min_records=0)
        run_job(_count_spec(), _words(), backend=b, **self.kwargs)
        recs = read_ledger(str(tmp_path / "ledger" / LEDGER_NAME))
        assert recs and recs[-1]["backend"] == "dist"
        assert recs[-1]["workers"] == 2


class TestCloseReapsEverything:
    """Satellite fix: ``backend.close()`` must reap worker processes
    and sockets on *every* exit path, including a raising kernel."""

    kwargs = dict(mode=MemoryMode.SIO, strategy=None, config=CFG,
                  threads_per_block=64)

    @staticmethod
    def _fd_count():
        return len(os.listdir("/proc/self/fd"))

    def test_raising_kernel_leaves_no_orphans_or_fds(self):
        def boom(key, value, emit, const):
            raise ValueError("scripted kernel failure")

        spec = MapReduceSpec(name="boom", map_record=boom)
        inp = _words()
        fd_before = self._fd_count()
        b = DistributedBackend(workers=2, min_records=0)
        with pytest.raises(FrameworkError, match="scripted kernel"):
            run_job(spec, inp, backend=b, **self.kwargs)
        # Every worker process reaped (active_children() also joins).
        assert multiprocessing.active_children() == []
        # Every socket and pipe released.
        assert self._fd_count() <= fd_before

    def test_clean_run_leaves_no_orphans_or_fds(self):
        fd_before = self._fd_count()
        b = DistributedBackend(workers=2, min_records=0)
        run_job(_ident_spec(), _words(), backend=b, **self.kwargs)
        assert multiprocessing.active_children() == []
        assert self._fd_count() <= fd_before

    def test_worker_death_still_reaps(self):
        fd_before = self._fd_count()
        b = DistributedBackend(workers=2, min_records=0,
                               fault_plan=FaultPlan.kill(0, 10))
        run_job(_ident_spec(), _words(), backend=b, **self.kwargs)
        assert multiprocessing.active_children() == []
        assert self._fd_count() <= fd_before
        assert b.last_counters["worker_deaths"] == 1
