"""Property-based invariants (hypothesis) for the framework layers.

What the paper's design takes for granted, checked over arbitrary
inputs rather than the workloads' well-behaved ones:

* record sets survive the host -> device -> host round trip byte-for-
  byte, including zero-length keys and values (the directory encodes
  ``(offset, length)`` per record, so empties must be representable);
* the Shuffle phase is a *partition*: every intermediate pair lands in
  exactly one key set, group keys are strictly sorted and disjoint,
  and values keep their emission order within a group (sort
  stability — what makes TR deterministic);
* the shared-memory layout planner carves non-overlapping areas that
  exactly exhaust the staging budget;
* warp-role partitioning covers every warp exactly once and respects
  the helper-warp reservation in output-staging modes;
* the pure prefix-sum used by result collection is an exclusive scan
  over arbitrary warp-sized inputs;
* the parallel backend's shard splitter covers ``[0, n)`` with
  contiguous, balanced, non-empty ranges.
"""

import pytest

hyp = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import ConfigError  # noqa: E402
from repro.framework.host import shard_slices  # noqa: E402
from repro.framework.layout import (  # noqa: E402
    CONTROL_BYTES,
    FLAG_BYTES_PER_WARP,
    plan_layout,
)
from repro.framework.modes import MemoryMode  # noqa: E402
from repro.framework.partition import partition_warps  # noqa: E402
from repro.framework.prefix_sum import exclusive_scan  # noqa: E402
from repro.framework.records import DeviceRecordSet, KeyValueSet  # noqa: E402
from repro.framework.shuffle import group_host, shuffle  # noqa: E402
from repro.gpu.config import WARP_SIZE, DeviceConfig  # noqa: E402
from repro.gpu.memory import GlobalMemory  # noqa: E402

# Keep each example cheap: the value of these tests is input *shape*
# diversity (empty records, duplicate keys, single-byte payloads),
# not volume.
SETTINGS = settings(max_examples=60, deadline=None)

payload = st.binary(min_size=0, max_size=12)
records = st.lists(st.tuples(payload, payload), max_size=40)
# Duplicate-heavy variant: a handful of candidate keys so groups form.
hot_records = st.lists(
    st.tuples(st.sampled_from([b"", b"a", b"b", b"key", b"\x00\x01"]),
              payload),
    max_size=40,
)


# ----------------------------------------------------------------------
# Record encode/decode round trip
# ----------------------------------------------------------------------


@SETTINGS
@given(recs=records)
def test_device_round_trip(recs):
    kvs = KeyValueSet(recs)
    dev = DeviceRecordSet.upload(GlobalMemory(), kvs, label="t")
    assert list(dev.download()) == recs


@SETTINGS
@given(recs=records)
def test_device_directory_geometry(recs):
    """Directory entries tile the blobs: offsets are the exclusive
    scan of the lengths, and per-record reads see the original bytes."""
    kvs = KeyValueSet(recs)
    dev = DeviceRecordSet.upload(GlobalMemory(), kvs, label="t")
    assert dev.count == len(recs)
    k_off = v_off = 0
    for i, (k, v) in enumerate(recs):
        ko, kl, vo, vl = dev.dir_entry(i)
        assert (ko, kl) == (k_off, len(k))
        assert (vo, vl) == (v_off, len(v))
        assert dev.key_bytes_of(i) == k
        assert dev.val_bytes_of(i) == v
        k_off += len(k)
        v_off += len(v)
    assert dev.keys_size == k_off and dev.vals_size == v_off


# ----------------------------------------------------------------------
# Shuffle: grouping is a partition
# ----------------------------------------------------------------------


@SETTINGS
@given(recs=hot_records)
def test_shuffle_partitions_pairs(recs):
    kvs = KeyValueSet(recs)
    gmem = GlobalMemory()
    res = shuffle(gmem, DeviceRecordSet.upload(gmem, kvs, label="t"),
                  DeviceConfig.small(1))
    g = res.grouped
    assert res.n_records == len(recs)

    keys = [g.group_key(i) for i in range(g.n_groups)]
    # Group keys: strictly sorted, hence pairwise disjoint.
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))

    # Every emitted pair appears in exactly one group; within a group
    # the values keep emission order (stable sort).
    expect = group_host(kvs)
    assert set(keys) == set(expect)
    regrouped = {
        keys[i]: [g.group_value(i, j) for j in range(int(g.group_counts[i]))]
        for i in range(g.n_groups)
    }
    assert regrouped == expect
    assert sum(len(vs) for vs in regrouped.values()) == len(recs)


# ----------------------------------------------------------------------
# Shared-memory layout planner
# ----------------------------------------------------------------------


@SETTINGS
@given(
    tpb=st.sampled_from([32, 64, 128, 256]),
    mode=st.sampled_from(list(MemoryMode)),
    io_ratio=st.floats(min_value=0.05, max_value=0.95),
    working=st.sampled_from([0, 8, 16, 32]),
)
def test_layout_areas_tile_the_budget(tpb, mode, io_ratio, working):
    budget = 16 * 1024
    try:
        lay = plan_layout(smem_budget=budget, threads_per_block=tpb,
                          mode=mode, io_ratio=io_ratio,
                          working_bytes_per_thread=working)
    except ConfigError:
        return  # too many threads for the budget: a legal refusal
    n_warps = tpb // WARP_SIZE
    flags = FLAG_BYTES_PER_WARP * n_warps + CONTROL_BYTES

    # Areas are contiguous and non-overlapping, in declaration order.
    assert lay.flags_off == 0
    assert lay.working_off == flags
    assert lay.input_off == lay.working_off + working * tpb
    assert lay.output_off == lay.input_off + lay.input_bytes
    assert lay.total_bytes <= budget

    staging = budget - flags - working * tpb
    if mode.stages_input and mode.stages_output:
        assert lay.input_bytes + lay.output_bytes == staging
        assert lay.input_bytes == int(staging * io_ratio)
    elif mode.stages_input:
        assert (lay.input_bytes, lay.output_bytes) == (staging, 0)
    elif mode.stages_output:
        assert (lay.input_bytes, lay.output_bytes) == (0, staging)
    else:
        assert lay.input_bytes == lay.output_bytes == 0


@SETTINGS
@given(sizes=st.lists(st.tuples(st.integers(0, 64), st.integers(0, 64)),
                      max_size=64),
       start=st.integers(0, 64))
def test_layout_records_fit_is_maximal(sizes, start):
    lay = plan_layout(smem_budget=16 * 1024, threads_per_block=128,
                      mode=MemoryMode.SIO)
    ks = [k for k, _ in sizes]
    vs = [v for _, v in sizes]
    n = lay.records_fit(ks, vs, start)
    total = len(sizes)
    assert 0 <= n <= max(0, total - start)
    need = lambda i: ks[i] + vs[i] + 16  # noqa: E731
    assert sum(need(i) for i in range(start, start + n)) <= lay.input_bytes
    if start + n < total:  # maximal: the next record would not fit
        assert (sum(need(i) for i in range(start, start + n))
                + need(start + n) > lay.input_bytes)


# ----------------------------------------------------------------------
# Warp-role partition
# ----------------------------------------------------------------------


@SETTINGS
@given(
    n_warps=st.integers(2, 16),
    concurrency=st.integers(0, 1024),
    mode=st.sampled_from(list(MemoryMode)),
)
def test_partition_covers_warps_exactly_once(n_warps, concurrency, mode):
    part = partition_warps(n_warps=n_warps, concurrency=concurrency,
                           mode=mode)
    both = part.compute_warps + part.helper_warps
    assert sorted(both) == list(range(n_warps))  # exact cover, no dups
    assert len(part.compute_warps) >= 1
    if mode.stages_output:
        assert len(part.helper_warps) >= 1
    # Compute capacity is the need rounded up to warps, capped by the
    # warps available for compute.
    needed = max(1, -(-max(0, concurrency) // WARP_SIZE))
    cap = n_warps - 1 if mode.stages_output else n_warps
    assert len(part.compute_warps) == min(cap, needed)


# ----------------------------------------------------------------------
# Prefix sums
# ----------------------------------------------------------------------


@SETTINGS
@given(values=st.lists(st.integers(0, 1 << 16), max_size=WARP_SIZE))
def test_exclusive_scan(values):
    prefixes, total = exclusive_scan(values)
    assert len(prefixes) == len(values)
    assert total == sum(values)
    acc = 0
    for p, v in zip(prefixes, values):
        assert p == acc
        acc += v
    # The collection invariant the scan exists for: each lane's slot
    # [prefix, prefix + size) tiles [0, total) without overlap.
    for i in range(len(values) - 1):
        assert prefixes[i] + values[i] == prefixes[i + 1]


# ----------------------------------------------------------------------
# Shard splitting (parallel backend)
# ----------------------------------------------------------------------


@SETTINGS
@given(n=st.integers(0, 4096), shards=st.integers(1, 64))
def test_shard_slices_partition(n, shards):
    slices = shard_slices(n, shards)
    assert len(slices) == min(n, shards)
    # Contiguous exact cover of [0, n).
    pos = 0
    for lo, hi in slices:
        assert lo == pos and hi > lo
        pos = hi
    assert pos == n
    # Balanced: shard sizes differ by at most one.
    if slices:
        sizes = [hi - lo for lo, hi in slices]
        assert max(sizes) - min(sizes) <= 1
