"""The differential fuzzer as a test: sim (sanitized) vs fast vs
parallel vs oracle."""

import pytest

import repro.check.fuzz as fuzz_mod
from repro.check.fuzz import (
    FuzzCase,
    build_input,
    draw_case,
    run_case,
    run_fuzz,
)
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu.config import DeviceConfig

CFG = DeviceConfig.small(2)


class TestGenerator:
    def test_cases_are_reproducible(self):
        assert draw_case(7, 42) == draw_case(7, 42)
        assert build_input(draw_case(7, 42)).keys == \
            build_input(draw_case(7, 42)).keys

    def test_br_never_pairs_with_gt(self):
        for i in range(400):
            c = draw_case(3, i)
            assert not (c.strategy is ReduceStrategy.BR
                        and c.mode is MemoryMode.GT)

    def test_degenerate_shapes_are_generated(self):
        sizes = {draw_case(7, i).n_records for i in range(200)}
        assert 0 in sizes and 1 in sizes  # empty and singleton inputs


class TestTargetedCases:
    """Hand-picked corners run through the full three-way check."""

    def _case(self, **kw):
        base = dict(index=0, kind="identity", n_records=8, key_pool=2,
                    mode=MemoryMode.SIO, strategy=None,
                    threads_per_block=64, io_ratio=None)
        base.update(kw)
        return FuzzCase(**base)

    def test_empty_input_every_mode(self):
        for mode in MemoryMode:
            assert run_case(self._case(n_records=0, mode=mode), CFG) is None

    def test_single_hot_key_reduction(self):
        for strat in (ReduceStrategy.TR, ReduceStrategy.BR):
            case = self._case(kind="sum", n_records=33, key_pool=1,
                              strategy=strat)
            assert run_case(case, CFG) is None

    def test_zero_output_map(self):
        assert run_case(self._case(kind="null", n_records=16), CFG) is None

    def test_overflow_forcing_burst(self):
        case = self._case(kind="burst", n_records=64, key_pool=1,
                          io_ratio=0.3)
        assert run_case(case, CFG) is None


class TestFuzzSweep:
    def test_pinned_seed_sweep_is_clean(self):
        assert run_fuzz(7, 120) == []

    @pytest.mark.fuzz
    def test_ci_seed_full_sweep_is_clean(self):
        """The exact sweep CI's fuzz tier pins: seed 7, 200 cases."""
        assert run_fuzz(7, 200) == []

    @pytest.mark.fuzz
    def test_alternate_seed_sweep_is_clean(self):
        """A second seed so the pinned one can't rot into the only
        shape the stack survives."""
        assert run_fuzz(20260806, 120) == []


class TestFailureReporting:
    def test_failure_prints_seeded_repro_command(self, monkeypatch, capsys):
        """Each FAIL line carries a copy-pasteable command that pins
        the seed and case index — a fuzz failure in CI must be
        reproducible from the log alone."""
        monkeypatch.setattr(fuzz_mod, "run_case",
                            lambda case, config: "injected failure")
        failures = run_fuzz(5, 2)
        assert len(failures) == 2
        err = capsys.readouterr().err
        assert "repro: python -m repro.check.fuzz --seed 5 --only 0" in err
        assert "repro: python -m repro.check.fuzz --seed 5 --only 1" in err
        assert "injected failure" in err
