"""Mutation tests: each detector must catch its defect class.

The acceptance bar for a sanitizer is not "runs clean on good code"
but "fires on broken code".  Each test here injects one of the four
defect classes the paper's protocols are vulnerable to — a corrupted
collector cursor, a dropped wait-signal, a missing synchronisation
edge, a duplicated global-tail reservation — and asserts the matching
finding appears in the report.  A control variant of the racy kernel
shows the barrier edge silences the detector (no false positive).
"""

import pytest

from repro.check import CheckConfig, Sanitizer
from repro.errors import DeadlockError, KernelFault
from repro.framework import MemoryMode, OutputBuffers, plan_layout
from repro.framework.collector import (
    COMPUTE_DONE,
    LEFT_USED,
    CollectorState,
    collect_warp_result,
    init_collector,
    request_final_flush,
    wait_loop,
)
from repro.framework.sync import WaitSignal
from repro.gpu import Device, DeviceConfig
from repro.gpu.instructions import AtomicGlobal, AtomicShared


def make_checked_device(**cfg):
    dev = Device(DeviceConfig.small(1))
    san = Sanitizer(CheckConfig(strict=False, **cfg))
    dev.checker = san
    return dev, san


def kinds(report):
    return {f.kind for f in report.findings}


def collector_setup(dev, n_warps=4):
    layout = plan_layout(smem_budget=16 * 1024,
                         threads_per_block=32 * n_warps,
                         mode=MemoryMode.SO)
    out = OutputBuffers.allocate(dev.gmem, key_capacity=4096,
                                 val_capacity=4096, record_capacity=256)
    return layout, out


class TestCollectorMutation:
    def test_corrupted_cursor_is_detected(self):
        """A warp that moves LEFT_USED behind the collector's back
        must trip the cursor shadow on the next reservation."""
        dev, san = make_checked_device(race=False)
        layout, out = collector_setup(dev)

        def k(ctx, layout, out):
            bs = ctx.block_state
            if ctx.warp_id == 0:
                cs = CollectorState(layout=layout, out=out,
                                    n_warps=ctx.warps_per_block, n_compute=1)
                init_collector(ctx, cs)
                bs["cs"] = cs
            yield from ctx.barrier()
            cs = bs["cs"]
            if ctx.warp_id == 0:
                yield from collect_warp_result(ctx, cs, [b"key1"], [b"val1"])
                # Sabotage: advance the directory cursor by one entry.
                base = layout.flags_off
                ctx.smem.write_u32(base + LEFT_USED,
                                   ctx.smem.read_u32(base + LEFT_USED) + 16)
                yield from ctx.stouch(4, write=True)
                yield from collect_warp_result(ctx, cs, [b"key2"], [b"val2"])
                done = ctx.smem.atomic_add_u32(base + COMPUTE_DONE, 1)
                yield AtomicShared(addr=base + COMPUTE_DONE, old=done)
                yield from request_final_flush(ctx, cs)
            else:
                yield from wait_loop(ctx, cs)

        try:
            dev.launch(k, grid=1, block=128, smem_bytes=layout.smem_bytes,
                       args=(layout, out))
        except KernelFault:
            pass  # downstream damage from the corruption is fine
        assert "cursor-mismatch" in kinds(san.finish())


class TestLivenessMutation:
    def test_dropped_signal_deadlocks_with_finding(self):
        """A signaller that never raises its flag strands the waiter;
        the tick rule must call it long before the poll-retry cap."""
        dev, san = make_checked_device(race=False)
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,),
                        wait_group=(1,))

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.fence_block()  # "signal" without the flag
            else:
                yield from ws.wait(ctx)

        with pytest.raises(DeadlockError):
            dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "deadlock" in kinds(san.finish())

    def test_stale_seen_flag_reuse_is_detected(self):
        """Raising a signal flag while a previous round's seen flag is
        still up is the classic lost-signal reuse bug (the guard in
        WaitSignal.signal prevents it; a legacy implementation that
        skips the guard must be caught by the observer)."""
        dev, san = make_checked_device(race=False)
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,),
                        wait_group=(1,))

        def k(ctx):
            if ctx.warp_id == 0:
                ws._register(ctx)
                # Stale state from a "previous round"...
                ctx.smem.write_u32(ws._seen_off(1), 1)
                yield from ctx.stouch(4, write=True)
                # ...and a guard-less re-signal on top of it.
                ctx.smem.write_u32(ws._sig_off(0), 1)
                yield from ctx.stouch(4, write=True)
                ctx.smem.write_u32(ws._sig_off(0), 0)
                ctx.smem.write_u32(ws._seen_off(1), 0)
                yield from ctx.stouch(8, write=True)
            else:
                yield from ctx.compute(100)

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "lost-signal" in kinds(san.finish())


class TestRaceMutation:
    def test_unsynchronised_writes_race(self):
        dev, san = make_checked_device()

        def k(ctx):
            ctx.smem.write_u32(0, ctx.warp_id + 1)  # both warps, no edge
            yield from ctx.stouch(4, write=True)
            yield from ctx.barrier()

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "write-write-race" in kinds(san.finish())

    def test_barrier_edge_silences_the_detector(self):
        """Control: the same two writes ordered by the block barrier
        are race-free — no false positive."""
        dev, san = make_checked_device()

        def k(ctx):
            if ctx.warp_id == 0:
                ctx.smem.write_u32(0, 1)
                yield from ctx.stouch(4, write=True)
            yield from ctx.barrier()
            if ctx.warp_id == 1:
                ctx.smem.write_u32(0, 2)
                yield from ctx.stouch(4, write=True)

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert san.finish().ok

    def test_read_write_race(self):
        dev, san = make_checked_device()

        def k(ctx):
            if ctx.warp_id == 0:
                ctx.smem.write_u32(8, 7)
                yield from ctx.stouch(4, write=True)
            else:
                ctx.smem.read_u32(8)
                yield from ctx.stouch(4)
            yield from ctx.barrier()

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "read-write-race" in kinds(san.finish())


class TestAtomicsMutation:
    def test_duplicate_reservation_is_detected(self):
        """Two reservations returning the same old tail means the
        'atomic' wasn't: the linearizability chain must break."""
        dev, san = make_checked_device(race=False)

        def k(ctx):
            yield from ctx.compute(10)
            if ctx.warp_id == 0:
                yield AtomicGlobal(addr=512, old=0, delta=4)
                yield AtomicGlobal(addr=512, old=0, delta=4)  # duplicate

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "duplicate-reservation" in kinds(san.finish())

    def test_reservation_gap_is_detected(self):
        dev, san = make_checked_device(race=False)

        def k(ctx):
            yield from ctx.compute(10)
            if ctx.warp_id == 0:
                yield AtomicGlobal(addr=512, old=0, delta=4)
                yield AtomicGlobal(addr=512, old=8, delta=4)  # skipped 4..8

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert "reservation-gap" in kinds(san.finish())

    def test_valid_chain_is_clean(self):
        dev, san = make_checked_device(race=False)

        def k(ctx):
            yield from ctx.compute(10)
            if ctx.warp_id == 0:
                yield AtomicGlobal(addr=512, old=0, delta=4)
                yield AtomicGlobal(addr=512, old=4, delta=4)

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert san.finish().ok
