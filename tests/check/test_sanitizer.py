"""Tests for the repro.check sanitizer plumbing and clean-run paths."""

import pytest

from repro.check import (
    CHECK_ENV,
    CheckConfig,
    CheckError,
    CheckReport,
    Finding,
    resolve_check,
)
from repro.errors import FrameworkError
from repro.framework.api import MapReduceSpec
from repro.framework.job import run_job
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.framework.records import KeyValueSet
from repro.gpu.config import DeviceConfig


def _u32(n):
    return (n & 0xFFFFFFFF).to_bytes(4, "little")


def _spec():
    def map_identity(key, value, emit, const):
        emit(key.to_bytes(), value.to_bytes())

    def reduce_count(key, values, emit, const):
        emit(key.to_bytes(), _u32(len(values)))

    return MapReduceSpec(name="chk", map_record=map_identity,
                         reduce_record=reduce_count)


def _input(n=24, keys=3):
    inp = KeyValueSet()
    for i in range(n):
        inp.append(_u32(i % keys), _u32(i))
    return inp


CFG = DeviceConfig.small(2)


class TestResolveCheck:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV, raising=False)
        assert resolve_check(None) is None

    def test_env_values(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV, "1")
        cfg = resolve_check(None)
        assert cfg is not None and cfg.strict
        monkeypatch.setenv(CHECK_ENV, "report")
        cfg = resolve_check(None)
        assert cfg is not None and not cfg.strict
        monkeypatch.setenv(CHECK_ENV, "0")
        assert resolve_check(None) is None

    def test_explicit_values(self):
        assert resolve_check(False) is None
        assert resolve_check(True).strict
        assert not resolve_check("report").strict
        own = CheckConfig(race=False)
        assert resolve_check(own) is own

    def test_unknown_string_raises(self):
        with pytest.raises(FrameworkError):
            resolve_check("banana")


class TestCheckReport:
    def test_ok_and_raise(self):
        rep = CheckReport()
        assert rep.ok
        rep.raise_if_findings()  # no-op when clean
        rep.add(Finding(detector="race", kind="write-write-race",
                        message="boom"), max_findings=25)
        assert not rep.ok
        with pytest.raises(CheckError) as ei:
            rep.raise_if_findings()
        assert ei.value.report is rep

    def test_report_mode_does_not_raise(self):
        rep = CheckReport(strict=False)
        rep.add(Finding(detector="race", kind="x", message="m"),
                max_findings=25)
        rep.raise_if_findings()

    def test_truncation(self):
        rep = CheckReport(strict=False)
        for i in range(30):
            accepted = rep.add(
                Finding(detector="d", kind="k", message=str(i)),
                max_findings=4)
            assert accepted == (i < 4)
        assert rep.truncated
        assert len(rep.findings) == 4
        assert rep.to_dict()["truncated"] is True


class TestJobIntegration:
    def test_clean_job_attaches_report(self):
        # backend pinned: the sanitizer instruments the simulator, so
        # this must not follow $REPRO_BACKEND to a functional backend.
        r = run_job(_spec(), _input(), mode=MemoryMode.SIO,
                    strategy=ReduceStrategy.TR, config=CFG, check=True,
                    backend="sim")
        rep = r.check_report
        assert rep is not None and rep.ok
        assert rep.counters.get("collector_reservations", 0) > 0
        assert rep.counters.get("atomic_reservations", 0) > 0

    def test_env_var_enables_check(self, monkeypatch):
        monkeypatch.setenv(CHECK_ENV, "report")
        r = run_job(_spec(), _input(), mode=MemoryMode.G,
                    strategy=ReduceStrategy.TR, config=CFG,
                    backend="sim")
        assert r.check_report is not None and r.check_report.ok

    def test_check_off_means_no_report(self, monkeypatch):
        monkeypatch.delenv(CHECK_ENV, raising=False)
        r = run_job(_spec(), _input(), mode=MemoryMode.SIO,
                    strategy=ReduceStrategy.TR, config=CFG)
        assert r.check_report is None

    def test_fast_backend_has_no_report(self):
        r = run_job(_spec(), _input(), mode=MemoryMode.SIO,
                    strategy=ReduceStrategy.TR, config=CFG,
                    backend="fast", check=True)
        assert r.check_report is None

    def test_empty_input_is_legal(self):
        r = run_job(_spec(), KeyValueSet(), mode=MemoryMode.SIO,
                    strategy=ReduceStrategy.TR, config=CFG, check=True,
                    backend="sim")
        assert len(r.output) == 0
        assert r.check_report is not None and r.check_report.ok
