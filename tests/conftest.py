"""Suite-wide fixtures.

The run ledger (:mod:`repro.obs.ledger`) is on by default, so every
job the tests execute would append to the working tree's
``.repro/runs.jsonl``.  Point it at a per-test temp dir instead: the
append path stays exercised, the tree stays clean, and ledger tests
remain free to re-point or disable it with ``monkeypatch``.
"""

import pytest


@pytest.fixture(autouse=True)
def _ledger_tmpdir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "ledger"))
