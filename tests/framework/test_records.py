"""Tests for record sets, device images, and output buffers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameworkError
from repro.framework.records import (
    DIR_PER_RECORD,
    DeviceRecordSet,
    KeyValueSet,
    OutputBuffers,
)
from repro.gpu.memory import GlobalMemory

records_strategy = st.lists(
    st.tuples(st.binary(min_size=0, max_size=40), st.binary(min_size=0, max_size=40)),
    min_size=1,
    max_size=50,
)


class TestKeyValueSet:
    def test_append_and_iterate(self):
        kvs = KeyValueSet([(b"a", b"1"), (b"bb", b"22")])
        assert len(kvs) == 2
        assert list(kvs) == [(b"a", b"1"), (b"bb", b"22")]
        assert kvs[1] == (b"bb", b"22")

    def test_rejects_non_bytes(self):
        kvs = KeyValueSet()
        with pytest.raises(FrameworkError):
            kvs.append("str", b"x")
        with pytest.raises(FrameworkError):
            kvs.append(b"x", 42)

    def test_byte_totals(self):
        kvs = KeyValueSet([(b"abc", b"de"), (b"", b"fgh")])
        assert kvs.key_bytes == 3
        assert kvs.val_bytes == 5
        assert kvs.total_bytes == 8 + 2 * DIR_PER_RECORD

    def test_sorted_by_key(self):
        kvs = KeyValueSet([(b"z", b"1"), (b"a", b"2"), (b"m", b"3")])
        assert [k for k, _ in kvs.sorted_by_key()] == [b"a", b"m", b"z"]

    def test_record_stats(self):
        kvs = KeyValueSet([(b"ab", b"x"), (b"abcd", b"xyz")])
        s = kvs.record_stats()
        assert s["key_mean"] == 3.0
        assert s["val_mean"] == 2.0

    def test_equality(self):
        a = KeyValueSet([(b"k", b"v")])
        b = KeyValueSet([(b"k", b"v")])
        assert a == b
        b.append(b"x", b"y")
        assert a != b


class TestDeviceRecordSet:
    def test_upload_download_roundtrip(self):
        g = GlobalMemory()
        kvs = KeyValueSet([(b"hello", b"world"), (b"", b"v"), (b"k", b"")])
        d = DeviceRecordSet.upload(g, kvs)
        assert d.count == 3
        assert d.download() == kvs

    def test_dir_entries(self):
        g = GlobalMemory()
        kvs = KeyValueSet([(b"ab", b"xyz"), (b"cde", b"pq")])
        d = DeviceRecordSet.upload(g, kvs)
        assert d.dir_entry(0) == (0, 2, 0, 3)
        assert d.dir_entry(1) == (2, 3, 3, 2)

    def test_per_record_access(self):
        g = GlobalMemory()
        d = DeviceRecordSet.upload(g, KeyValueSet([(b"key0", b"val0")]))
        assert d.key_bytes_of(0) == b"key0"
        assert d.val_bytes_of(0) == b"val0"

    def test_out_of_range(self):
        g = GlobalMemory()
        d = DeviceRecordSet.upload(g, KeyValueSet([(b"k", b"v")]))
        with pytest.raises(FrameworkError):
            d.dir_entry(1)

    def test_sizes(self):
        g = GlobalMemory()
        kvs = KeyValueSet([(b"abc", b"de")])
        d = DeviceRecordSet.upload(g, kvs)
        assert d.payload_bytes == 5
        assert d.total_bytes == 5 + DIR_PER_RECORD

    @given(records_strategy)
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, records):
        g = GlobalMemory()
        kvs = KeyValueSet(records)
        assert DeviceRecordSet.upload(g, kvs).download() == kvs


class TestOutputBuffers:
    def make(self, g=None, **kw):
        g = g or GlobalMemory()
        defaults = dict(key_capacity=256, val_capacity=256, record_capacity=16)
        defaults.update(kw)
        return g, OutputBuffers.allocate(g, **defaults)

    def test_tails_start_zero(self):
        g, out = self.make()
        assert g.read_u32(out.key_tail) == 0
        assert g.read_u32(out.val_tail) == 0
        assert g.read_u32(out.rec_count) == 0

    def test_as_record_set_reflects_appends(self):
        g, out = self.make()
        # Simulate what the collector does: write record 0 manually.
        g.write(out.keys_addr, b"kk")
        g.write(out.vals_addr, b"vvv")
        g.write_u32(out.key_dir_addr, 0)
        g.write_u32(out.key_dir_addr + 4, 2)
        g.write_u32(out.val_dir_addr, 0)
        g.write_u32(out.val_dir_addr + 4, 3)
        g.write_u32(out.key_tail, 2)
        g.write_u32(out.val_tail, 3)
        g.write_u32(out.rec_count, 1)
        rs = out.as_record_set()
        assert rs.count == 1
        assert rs.download() == KeyValueSet([(b"kk", b"vvv")])

    def test_overflow_detection(self):
        _, out = self.make()
        with pytest.raises(FrameworkError, match="overflow"):
            out.check_reservation(300, 0, 0)
        with pytest.raises(FrameworkError):
            out.check_reservation(0, 300, 0)
        with pytest.raises(FrameworkError):
            out.check_reservation(0, 0, 17)
        out.check_reservation(256, 256, 16)  # exactly at capacity: fine
