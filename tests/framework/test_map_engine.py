"""Tests for the Map engine across all memory-usage modes.

Uses a small synthetic workload (duplicate each record, key reversed)
so correctness is trivially checkable, plus targeted assertions on the
timing side (transaction counts, texture hits, overflow flushes).
"""

import pytest

from repro.errors import FrameworkError, KernelFault
from repro.framework import DeviceRecordSet, KeyValueSet, MemoryMode
from repro.framework.api import MapReduceSpec
from repro.framework.map_engine import build_map_runtime, launch_map
from repro.gpu import Device, DeviceConfig

MODES = list(MemoryMode)


def dup_map(key, value, emit, const):
    """Emit (key, value) and (reversed key, value)."""
    k = key.to_bytes()
    v = value.to_bytes()
    emit(k, v)
    emit(k[::-1], v)


def make_spec(**kw):
    defaults = dict(name="dup", map_record=dup_map)
    defaults.update(kw)
    return MapReduceSpec(**defaults)


def make_input(n=100):
    return KeyValueSet(
        [(f"key{i:04d}".encode(), f"v{i:03d}".encode()) for i in range(n)]
    )


def run_map(spec, inp, mode, *, tpb=128, cfg=None, **kw):
    dev = Device(cfg or DeviceConfig.small(2))
    d_in = DeviceRecordSet.upload(dev.gmem, inp)
    rt = build_map_runtime(dev, spec, mode, d_in, threads_per_block=tpb, **kw)
    stats = launch_map(dev, rt)
    return rt.out.as_record_set().download(), stats, rt


def expected(inp):
    out = []
    for k, v in inp:
        out.append((k, v))
        out.append((k[::-1], v))
    return sorted(out)


class TestFunctionalAcrossModes:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_output_matches_oracle(self, mode):
        inp = make_input(100)
        got, _, _ = run_map(make_spec(), inp, mode)
        assert sorted(got) == expected(inp)

    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_single_record_input(self, mode):
        inp = KeyValueSet([(b"only", b"one")])
        got, _, _ = run_map(make_spec(), inp, mode, tpb=64)
        assert sorted(got) == [(b"only", b"one"), (b"ylno", b"one")]

    @pytest.mark.parametrize("tpb", [64, 128, 256, 512])
    def test_block_sizes(self, tpb):
        inp = make_input(150)
        got, _, _ = run_map(make_spec(), inp, MemoryMode.SIO, tpb=tpb)
        assert sorted(got) == expected(inp)

    def test_empty_emissions(self):
        def silent_map(key, value, emit, const):
            pass

        inp = make_input(50)
        for mode in (MemoryMode.G, MemoryMode.SIO):
            got, _, _ = run_map(make_spec(map_record=silent_map), inp, mode)
            assert len(got) == 0

    def test_variable_emission_counts(self):
        """Lane i emits i % 5 records: exercises emission layering."""

        def var_map(key, value, emit, const):
            n = key.u32(0) % 5
            for j in range(n):
                emit(key.to_bytes() + bytes([j]), value.to_bytes())

        inp = KeyValueSet(
            [(i.to_bytes(4, "little"), b"v") for i in range(64)]
        )
        want = sum(i % 5 for i in range(64))
        for mode in (MemoryMode.G, MemoryMode.SO, MemoryMode.SIO):
            got, _, _ = run_map(make_spec(map_record=var_map), inp, mode)
            assert len(got) == want

    def test_large_variable_records(self):
        """Heavy-tailed record sizes survive staging tile packing."""
        inp = KeyValueSet(
            [(b"k" * (1 + (i * 37) % 900), b"v" * (1 + (i * 13) % 200))
             for i in range(80)]
        )

        def head_map(key, value, emit, const):
            emit(key[0:4], len(value).to_bytes(4, "little"))

        for mode in (MemoryMode.SI, MemoryMode.SIO):
            got, _, _ = run_map(make_spec(map_record=head_map), inp, mode)
            assert len(got) == 80

    def test_const_region(self):
        def const_map(key, value, emit, const):
            emit(const[0:3], value.to_bytes())

        inp = make_input(32)
        got, _, _ = run_map(
            make_spec(map_record=const_map, const_bytes=b"CONSTANT"),
            inp, MemoryMode.SIO,
        )
        assert all(k == b"CON" for k, _ in got)


class TestTimingBehaviour:
    def test_gt_uses_texture(self):
        inp = make_input(200)
        _, st, _ = run_map(make_spec(), inp, MemoryMode.GT)
        assert st.texture_reads > 0
        assert st.texture_hits + st.texture_misses > 0

    def test_non_gt_modes_never_touch_texture(self):
        inp = make_input(50)
        for mode in (MemoryMode.G, MemoryMode.SI, MemoryMode.SO, MemoryMode.SIO):
            _, st, _ = run_map(make_spec(), inp, mode)
            assert st.texture_reads == 0

    def test_staged_output_amortises_atomics(self):
        inp = make_input(400)
        _, st_g, _ = run_map(make_spec(), inp, MemoryMode.G)
        _, st_so, _ = run_map(make_spec(), inp, MemoryMode.SO)
        assert st_so.atomics_global < st_g.atomics_global / 3

    def test_staged_input_reduces_global_reads(self):
        inp = make_input(400)
        _, st_g, _ = run_map(make_spec(), inp, MemoryMode.G)
        _, st_si, _ = run_map(make_spec(), inp, MemoryMode.SI)
        assert st_si.global_reads < st_g.global_reads
        assert st_si.shared_ops > st_g.shared_ops

    def test_overflow_flushes_counted(self):
        """A tiny output area forces many overflow flushes."""

        def chatty_map(key, value, emit, const):
            for j in range(8):
                emit(key.to_bytes() + bytes([j]), b"x" * 32)

        inp = make_input(128)
        got, st, _ = run_map(
            make_spec(map_record=chatty_map, out_records_factor=16.0),
            inp, MemoryMode.SO, tpb=512,
        )
        assert len(got) == 128 * 8
        assert st.extra.get("overflow_flushes", 0) >= 1

    def test_so_needs_two_warps(self):
        inp = make_input(10)
        with pytest.raises((FrameworkError, KernelFault)):
            run_map(make_spec(), inp, MemoryMode.SO, tpb=32)

    def test_grid_respects_occupancy(self):
        inp = make_input(2000)
        _, st, rt = run_map(make_spec(), inp, MemoryMode.SIO,
                            cfg=DeviceConfig.small(2))
        assert st.grid_blocks == rt.grid
        assert st.blocks_per_mp >= 1

    def test_io_ratio_override(self):
        inp = make_input(100)
        _, _, rt_a = run_map(make_spec(), inp, MemoryMode.SIO, io_ratio=0.2)
        _, _, rt_b = run_map(make_spec(), inp, MemoryMode.SIO, io_ratio=0.8)
        assert rt_a.layout.input_bytes < rt_b.layout.input_bytes

    def test_determinism(self):
        inp = make_input(128)
        _, a, _ = run_map(make_spec(), inp, MemoryMode.SIO)
        _, b, _ = run_map(make_spec(), inp, MemoryMode.SIO)
        assert a.cycles == b.cycles
        assert a.global_transactions == b.global_transactions


class TestStageFlags:
    def test_stage_values_false(self):
        """Value accesses replay to global even under SI."""

        def val_map(key, value, emit, const):
            emit(key.to_bytes(), value[0:8])

        inp = KeyValueSet([(b"idx%d" % i, b"V" * 256) for i in range(64)])
        _, st_staged, _ = run_map(
            make_spec(map_record=val_map), inp, MemoryMode.SI
        )
        _, st_unstaged, _ = run_map(
            make_spec(map_record=val_map, stage_values=False), inp, MemoryMode.SI
        )
        # Staging copies the full 256-byte values into shared memory;
        # without value staging only the touched words move, so far
        # fewer global bytes are read overall.
        assert st_unstaged.global_bytes < st_staged.global_bytes / 2
        assert st_unstaged.shared_ops < st_staged.shared_ops
