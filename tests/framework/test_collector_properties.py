"""Property-based stress tests for result collection.

The central invariant of the whole framework: *no emission is ever
lost or corrupted*, regardless of emission pattern, warp-result sizes,
overflow timing, or which warps emit — under both the staged and the
direct collection paths.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.framework import MemoryMode, OutputBuffers, plan_layout
from repro.framework.collector import (
    COMPUTE_DONE,
    CollectorState,
    collect_warp_result,
    direct_emit_warp,
    init_collector,
    request_final_flush,
    wait_loop,
)
from repro.gpu import Device, DeviceConfig
from repro.gpu.instructions import AtomicShared

# Per-compute-warp emission plans: a list of rounds, each round a list
# of (key, value) pairs (max 32 = one warp result).
emission_plan = st.lists(  # rounds
    st.lists(  # records in one warp result
        st.tuples(
            st.binary(min_size=1, max_size=24),
            st.binary(min_size=0, max_size=16),
        ),
        min_size=0,
        max_size=8,
    ),
    min_size=0,
    max_size=6,
)


def run_staged(plans: dict[int, list], n_warps: int = 4):
    """Run the SO collection kernel with the given per-warp plans."""
    dev = Device(DeviceConfig.small(1))
    layout = plan_layout(
        smem_budget=16 * 1024, threads_per_block=32 * n_warps,
        mode=MemoryMode.SO,
    )
    out = OutputBuffers.allocate(
        dev.gmem, key_capacity=1 << 16, val_capacity=1 << 16,
        record_capacity=4096,
    )
    n_compute = n_warps - 1

    def kernel(ctx):
        bs = ctx.block_state
        if ctx.warp_id == 0:
            cs = CollectorState(layout=layout, out=out, n_warps=n_warps,
                                n_compute=n_compute)
            init_collector(ctx, cs)
            bs["cs"] = cs
        yield from ctx.barrier()
        cs = bs["cs"]
        if ctx.warp_id < n_compute:
            for round_records in plans.get(ctx.warp_id, []):
                keys = [k for k, _ in round_records]
                vals = [v for _, v in round_records]
                yield from collect_warp_result(ctx, cs, keys, vals)
            done = ctx.smem.atomic_add_u32(layout.flags_off + COMPUTE_DONE, 1)
            yield AtomicShared(addr=layout.flags_off + COMPUTE_DONE, old=done)
            if done == n_compute - 1:
                yield from request_final_flush(ctx, cs)
            else:
                yield from wait_loop(ctx, cs)
        else:
            yield from wait_loop(ctx, cs)

    dev.launch(kernel, grid=1, block=32 * n_warps,
               smem_bytes=layout.smem_bytes, max_cycles=5e8)
    return sorted(out.as_record_set().download())


@given(emission_plan, emission_plan, emission_plan)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_staged_collection_loses_nothing(p0, p1, p2):
    plans = {0: p0, 1: p1, 2: p2}
    expected = sorted(
        (k, v) for plan in plans.values() for rnd in plan for k, v in rnd
    )
    assert run_staged(plans) == expected


@given(
    st.lists(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=16),
                      st.binary(min_size=0, max_size=16)),
            min_size=0, max_size=8,
        ),
        min_size=1, max_size=4,
    )
)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_direct_emit_loses_nothing(rounds):
    dev = Device(DeviceConfig.small(1))
    out = OutputBuffers.allocate(
        dev.gmem, key_capacity=1 << 16, val_capacity=1 << 16,
        record_capacity=4096,
    )

    def kernel(ctx):
        for rnd in rounds:
            keys = [k for k, _ in rnd]
            vals = [v for _, v in rnd]
            yield from direct_emit_warp(ctx, out, keys, vals)

    dev.launch(kernel, grid=2, block=64, smem_bytes=1024)
    got = sorted(out.as_record_set().download())
    per_warp = sorted((k, v) for rnd in rounds for k, v in rnd)
    # 2 blocks x 2 warps all emit the same plan.
    assert got == sorted(per_warp * 4)


def test_tiny_output_area_forces_many_flushes_without_loss():
    """Adversarial: output area barely bigger than one warp result."""
    dev = Device(DeviceConfig.small(1))
    layout = plan_layout(
        smem_budget=16 * 1024, threads_per_block=64, mode=MemoryMode.SO,
        working_bytes_per_thread=200,  # squeeze the output area
    )
    assert layout.output_bytes < 4096
    out = OutputBuffers.allocate(
        dev.gmem, key_capacity=1 << 16, val_capacity=1 << 16,
        record_capacity=4096,
    )

    def kernel(ctx):
        bs = ctx.block_state
        if ctx.warp_id == 0:
            cs = CollectorState(layout=layout, out=out, n_warps=2, n_compute=1)
            init_collector(ctx, cs)
            bs["cs"] = cs
        yield from ctx.barrier()
        cs = bs["cs"]
        if ctx.warp_id == 0:
            for r in range(50):
                keys = [f"key{r:02d}x{i}".encode() for i in range(16)]
                vals = [bytes([r, i]) for i in range(16)]
                yield from collect_warp_result(ctx, cs, keys, vals)
            yield from request_final_flush(ctx, cs)
        else:
            yield from wait_loop(ctx, cs)

    st_ = dev.launch(kernel, grid=1, block=64, smem_bytes=layout.smem_bytes)
    rs = out.as_record_set()
    assert rs.count == 50 * 16
    assert st_.extra["overflow_flushes"] >= 5
    got = dict(list(rs.download()))
    assert got[b"key37x9"] == bytes([37, 9])
