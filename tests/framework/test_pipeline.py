"""Tests for the iterative-job driver."""

import struct

import numpy as np
import pytest

from repro.errors import FrameworkError
from repro.framework import KeyValueSet, MemoryMode, ReduceStrategy
from repro.framework.pipeline import IterativeJob
from repro.gpu import DeviceConfig
from repro.workloads.datagen import clustered_vectors
from repro.workloads.kmeans import (
    DIM,
    km_combine,
    km_finalize,
    km_map,
    km_reduce,
)
from repro.framework.api import MapReduceSpec

CFG = DeviceConfig.small(2)


def km_spec(centroids: np.ndarray) -> MapReduceSpec:
    return MapReduceSpec(
        name="km_iter",
        map_record=km_map,
        reduce_record=km_reduce,
        combine=km_combine,
        finalize=km_finalize,
        const_bytes=centroids.astype("<f4").tobytes(),
    )


def fold(result, centroids: np.ndarray) -> np.ndarray:
    new = centroids.copy()
    for key, val in result.output:
        cid = struct.unpack("<I", key)[0]
        new[cid] = np.frombuffer(val, dtype="<f4")
    return new


def make_job(**kw):
    defaults = dict(
        make_spec=lambda i, c: km_spec(c),
        update=lambda i, r, c: fold(r, c),
        converged=lambda i, old, new: float(np.abs(new - old).max()) < 1e-4,
        mode=MemoryMode.SI,
        strategy=ReduceStrategy.TR,
        config=CFG,
    )
    defaults.update(kw)
    return IterativeJob(**defaults)


def km_problem(n=160, k=4, seed=11):
    vecs, _ = clustered_vectors(n, dim=DIM, k=k, seed=seed, spread=0.05)
    inp = KeyValueSet((b"", v.tobytes()) for v in vecs)
    init = vecs[:k].copy()
    return vecs, inp, init


class TestIterativeJob:
    def test_converges(self):
        vecs, inp, init = km_problem()
        res = make_job().run(inp, init, max_iterations=25)
        assert res.converged
        assert 1 <= res.n_iterations <= 25
        assert res.total_cycles > 0
        # Final centroids sit inside the data hull.
        final = res.state
        assert final.min() >= vecs.min() - 1e-5
        assert final.max() <= vecs.max() + 1e-5

    def test_quality_improves(self):
        vecs, inp, init = km_problem()
        res = make_job().run(inp, init, max_iterations=25)

        def cost(cents):
            d = np.linalg.norm(vecs[:, None, :] - cents[None], axis=2)
            return float(d.min(axis=1).mean())

        assert cost(res.state) <= cost(init) + 1e-9

    def test_max_iterations_bound(self):
        _, inp, init = km_problem()
        job = make_job(converged=lambda i, a, b: False)  # never converge
        res = job.run(inp, init, max_iterations=3)
        assert not res.converged
        assert res.n_iterations == 3

    def test_traces_and_last(self):
        _, inp, init = km_problem()
        res = make_job().run(inp, init, max_iterations=5)
        assert [t.index for t in res.iterations] == list(range(res.n_iterations))
        assert res.last is not None
        assert res.last.strategy is ReduceStrategy.TR

    def test_invalid_iteration_count(self):
        _, inp, init = km_problem()
        with pytest.raises(FrameworkError):
            make_job().run(inp, init, max_iterations=0)

    def test_br_strategy_loop(self):
        _, inp, init = km_problem(n=96)
        res = make_job(strategy=ReduceStrategy.BR, mode=MemoryMode.SIO).run(
            inp, init, max_iterations=6
        )
        assert res.n_iterations >= 1

    def test_iteration_traces_preserve_phase_timings(self):
        """Each IterationTrace carries the iteration's full per-phase
        breakdown, not just the total (phase-level convergence traces)."""
        _, inp, init = km_problem()
        # backend pinned: per-phase cycle counts are the simulator's.
        res = make_job(backend="sim").run(inp, init, max_iterations=3)
        for t in res.iterations:
            assert t.timings.total == pytest.approx(t.cycles)
            phases = t.phase_dict()
            assert set(phases) == {
                "io_in", "map", "shuffle", "reduce", "io_out", "total"}
            # A KMeans iteration exercises every phase.
            for phase in ("io_in", "map", "shuffle", "reduce", "io_out"):
                assert phases[phase] > 0

    def test_iterative_tracer_spans(self):
        from repro.obs import Tracer

        _, inp, init = km_problem()
        tr = Tracer(kernel_detail=False)
        res = make_job().run(inp, init, max_iterations=3, tracer=tr)
        root = tr.roots[0]
        assert root.name == "iterative_job"
        iter_spans = [s for s in root.children if s.name.startswith("iteration[")]
        assert len(iter_spans) == res.n_iterations
        # Each iteration span holds the job span, which holds the phases.
        job_span = iter_spans[0].children[0]
        assert job_span.name.startswith("job:")
        names = [c.name for c in job_span.children]
        assert names == ["io_in", "map", "shuffle", "reduce", "io_out"]
        if res.converged:
            assert any(e.name == "converged" for e in tr.instants)
