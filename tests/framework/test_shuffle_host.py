"""Tests for the shuffle phase and the host-transfer model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import DeviceRecordSet, KeyValueSet, shuffle
from repro.framework.host import download_cost, transfer_cycles, upload_cost
from repro.framework.shuffle import group_host, shuffle_cycles
from repro.gpu import DeviceConfig
from repro.gpu.memory import GlobalMemory


def make_grouped(records):
    g = GlobalMemory()
    inter = DeviceRecordSet.upload(g, KeyValueSet(records))
    return shuffle(g, inter, DeviceConfig.gtx280())


class TestShuffleGrouping:
    def test_groups_by_key_sorted(self):
        res = make_grouped([
            (b"b", b"1"), (b"a", b"2"), (b"b", b"3"), (b"c", b"4"), (b"a", b"5"),
        ])
        grp = res.grouped
        assert grp.n_groups == 3
        assert [grp.group_key(i) for i in range(3)] == [b"a", b"b", b"c"]
        assert list(grp.group_counts) == [2, 2, 1]
        assert grp.group_value(0, 0) == b"2"
        assert grp.group_value(0, 1) == b"5"
        assert grp.group_value(1, 1) == b"3"

    def test_values_contiguous_within_group(self):
        """BR's coalescing relies on group values being contiguous."""
        res = make_grouped([(b"k", bytes([i]) * 8) for i in range(10)])
        geom = res.grouped.group_value_geometry(0)
        for (a1, l1), (a2, _) in zip(geom, geom[1:]):
            assert a2 == a1 + l1

    def test_single_group(self):
        res = make_grouped([(b"same", bytes([i])) for i in range(5)])
        assert res.grouped.n_groups == 1
        assert res.n_records == 5

    def test_empty_values_ok(self):
        res = make_grouped([(b"k", b""), (b"k", b"")])
        assert res.grouped.group_value(0, 0) == b""

    def test_group_host_matches_device(self):
        records = [(bytes([65 + i % 3]), bytes([i])) for i in range(30)]
        host = group_host(KeyValueSet(records))
        res = make_grouped(records)
        assert res.grouped.n_groups == len(host)
        for i in range(res.grouped.n_groups):
            k = res.grouped.group_key(i)
            vals = [
                res.grouped.group_value(i, j)
                for j in range(int(res.grouped.group_counts[i]))
            ]
            assert vals == host[k]

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=6), st.binary(min_size=0, max_size=6)
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_value_conservation(self, records):
        res = make_grouped(records)
        assert res.grouped.n_values == len(records)
        total = int(res.grouped.group_counts.sum())
        assert total == len(records)


class TestShuffleCost:
    def test_zero_or_one_record_free(self):
        cfg = DeviceConfig.gtx280()
        assert shuffle_cycles(n_records=0, avg_record_bytes=8, config=cfg) == 0
        assert shuffle_cycles(n_records=1, avg_record_bytes=8, config=cfg) == 0

    def test_superlinear_growth(self):
        """Bitonic sort is n log^2 n: doubling records more than
        doubles cycles."""
        cfg = DeviceConfig.gtx280()
        c1 = shuffle_cycles(n_records=10000, avg_record_bytes=10, config=cfg)
        c2 = shuffle_cycles(n_records=80000, avg_record_bytes=10, config=cfg)
        assert c2 > 8 * c1

    def test_cost_attached_to_result(self):
        res = make_grouped([(b"a", b"1"), (b"b", b"2")])
        assert res.cycles > 0


class TestHostTransfers:
    def test_affine_model(self):
        cfg = DeviceConfig.gtx280()
        t = cfg.timing
        c = transfer_cycles(3900, cfg)
        assert c.cycles == pytest.approx(t.pcie_setup_cycles + 1000)

    def test_zero_bytes_free(self):
        cfg = DeviceConfig.gtx280()
        assert transfer_cycles(0, cfg).cycles == 0

    def test_upload_download_symmetry(self):
        cfg = DeviceConfig.gtx280()
        up = upload_cost(1000, 160, cfg)
        down = download_cost(1000, 160, cfg)
        assert up.cycles == down.cycles
        assert up.bytes_moved == 1160

    def test_bandwidth_dominates_large_transfers(self):
        cfg = DeviceConfig.gtx280()
        big = transfer_cycles(1 << 26, cfg)
        assert big.cycles > 100 * cfg.timing.pcie_setup_cycles


class TestHashShuffle:
    def test_same_grouping_either_method(self):
        from repro.framework.shuffle import shuffle as _shuffle

        records = [(bytes([65 + i % 5]), bytes([i])) for i in range(40)]
        g1 = GlobalMemory()
        s1 = _shuffle(g1, DeviceRecordSet.upload(g1, KeyValueSet(records)),
                      DeviceConfig.gtx280(), method="sort")
        g2 = GlobalMemory()
        s2 = _shuffle(g2, DeviceRecordSet.upload(g2, KeyValueSet(records)),
                      DeviceConfig.gtx280(), method="hash")
        assert s1.grouped.n_groups == s2.grouped.n_groups
        for i in range(s1.grouped.n_groups):
            assert s1.grouped.group_key(i) == s2.grouped.group_key(i)

    def test_hash_beats_sort_asymptotically(self):
        """MapCG's claim: hashing is linear, bitonic sort n log^2 n."""
        from repro.framework.shuffle import hash_shuffle_cycles

        cfg = DeviceConfig.gtx280()
        n = 200_000
        sort_c = shuffle_cycles(n_records=n, avg_record_bytes=10, config=cfg)
        hash_c = hash_shuffle_cycles(n_records=n, n_groups=5000,
                                     avg_record_bytes=10, config=cfg)
        assert hash_c < sort_c

    def test_hash_contention_with_few_groups(self):
        """A single hot bucket (KM-like, few groups) pays atomics."""
        from repro.framework.shuffle import hash_shuffle_cycles

        cfg = DeviceConfig.gtx280()
        few = hash_shuffle_cycles(n_records=50_000, n_groups=4,
                                  avg_record_bytes=32, config=cfg)
        many = hash_shuffle_cycles(n_records=50_000, n_groups=4096,
                                   avg_record_bytes=32, config=cfg)
        assert few > many

    def test_tiny_inputs_free(self):
        from repro.framework.shuffle import hash_shuffle_cycles

        assert hash_shuffle_cycles(n_records=1, n_groups=1,
                                   avg_record_bytes=4,
                                   config=DeviceConfig.gtx280()) == 0.0
