"""Tests for the Reduce engine (TR and BR) across modes."""

import struct

import pytest

from repro.errors import FrameworkError
from repro.framework import (
    DeviceRecordSet,
    KeyValueSet,
    MemoryMode,
    ReduceStrategy,
    shuffle,
)
from repro.framework.api import MapReduceSpec
from repro.framework.reduce_engine import build_reduce_runtime, launch_reduce
from repro.gpu import Device, DeviceConfig


def sum_reduce(key, values, emit, const):
    total = sum(v.u32() for v in values)
    emit(key.to_bytes(), struct.pack("<I", total))


def sum_combine(a, b):
    return struct.pack("<I", (struct.unpack("<I", a)[0] + struct.unpack("<I", b)[0]))


def sum_finalize(key, acc, count):
    return key, acc


def make_spec(**kw):
    defaults = dict(
        name="sumred",
        map_record=lambda k, v, e, c: e(k.to_bytes(), v.to_bytes()),
        reduce_record=sum_reduce,
        combine=sum_combine,
        finalize=sum_finalize,
    )
    defaults.update(kw)
    return MapReduceSpec(**defaults)


def make_grouped(dev, records):
    inter = DeviceRecordSet.upload(dev.gmem, KeyValueSet(records))
    return shuffle(dev.gmem, inter, dev.config).grouped


def run_reduce(records, mode, strategy, *, tpb=128, spec=None, mps=2):
    dev = Device(DeviceConfig.small(mps))
    grouped = make_grouped(dev, records)
    spec = spec or make_spec()
    rt = build_reduce_runtime(
        dev, spec, mode, strategy, grouped, threads_per_block=tpb
    )
    stats = launch_reduce(dev, rt)
    return rt.out.as_record_set().download(), stats


def counts_input(n_keys=20, per_key=9):
    records = []
    for k in range(n_keys):
        for j in range(per_key):
            records.append((f"key{k:03d}".encode(), struct.pack("<I", j + 1)))
    return records


def expected_sums(records):
    sums = {}
    for k, v in records:
        sums[k] = sums.get(k, 0) + struct.unpack("<I", v)[0]
    return sorted((k, struct.pack("<I", s)) for k, s in sums.items())


TR_MODES = [MemoryMode.G, MemoryMode.GT, MemoryMode.SI, MemoryMode.SO,
            MemoryMode.SIO]
BR_MODES = [MemoryMode.G, MemoryMode.SI, MemoryMode.SO, MemoryMode.SIO]


class TestThreadLevelReduction:
    @pytest.mark.parametrize("mode", TR_MODES, ids=[m.value for m in TR_MODES])
    def test_sums_match(self, mode):
        records = counts_input()
        got, _ = run_reduce(records, mode, ReduceStrategy.TR)
        assert sorted(got) == expected_sums(records)

    def test_single_group(self):
        records = [(b"only", struct.pack("<I", i)) for i in range(50)]
        got, _ = run_reduce(records, MemoryMode.G, ReduceStrategy.TR)
        assert got[0] == (b"only", struct.pack("<I", sum(range(50))))

    def test_many_small_groups(self):
        """WC-like: many distinct keys, few values each."""
        records = counts_input(n_keys=300, per_key=2)
        got, _ = run_reduce(records, MemoryMode.G, ReduceStrategy.TR)
        assert len(got) == 300

    def test_requires_reduce_fn(self):
        spec = make_spec(reduce_record=None)
        with pytest.raises(FrameworkError):
            run_reduce(counts_input(), MemoryMode.G, ReduceStrategy.TR, spec=spec)

    def test_gt_reduce_uses_texture(self):
        records = counts_input()
        _, st = run_reduce(records, MemoryMode.GT, ReduceStrategy.TR)
        assert st.texture_reads > 0


class TestBlockLevelReduction:
    @pytest.mark.parametrize("mode", BR_MODES, ids=[m.value for m in BR_MODES])
    def test_sums_match(self, mode):
        records = counts_input(n_keys=6, per_key=40)
        got, _ = run_reduce(records, mode, ReduceStrategy.BR)
        assert sorted(got) == expected_sums(records)

    def test_gt_impossible(self):
        with pytest.raises(FrameworkError, match="texture"):
            run_reduce(counts_input(), MemoryMode.GT, ReduceStrategy.BR)

    def test_requires_combine(self):
        spec = make_spec(combine=None)
        with pytest.raises(FrameworkError):
            run_reduce(counts_input(), MemoryMode.G, ReduceStrategy.BR, spec=spec)

    def test_finalize_receives_count(self):
        def count_finalize(key, acc, count):
            return key, struct.pack("<I", count)

        spec = make_spec(finalize=count_finalize)
        records = counts_input(n_keys=3, per_key=17)
        got, _ = run_reduce(records, MemoryMode.G, ReduceStrategy.BR, spec=spec)
        assert all(v == struct.pack("<I", 17) for _, v in got)

    def test_wide_values_staged_coalescing(self):
        """KM-BR's effect: wide values make SI move far fewer global
        transactions than G (Section IV-E)."""
        records = [(b"c", bytes(range(64)))] * 256

        def vec_combine(a, b):
            return bytes((x + y) % 256 for x, y in zip(a, b))

        spec = make_spec(combine=vec_combine)
        _, st_g = run_reduce(records, MemoryMode.G, ReduceStrategy.BR, spec=spec)
        _, st_si = run_reduce(records, MemoryMode.SI, ReduceStrategy.BR, spec=spec)
        assert st_si.global_transactions < st_g.global_transactions / 2

    def test_one_value_group(self):
        records = [(b"lonely", struct.pack("<I", 42))]
        got, _ = run_reduce(records, MemoryMode.G, ReduceStrategy.BR)
        assert got[0] == (b"lonely", struct.pack("<I", 42))

    def test_so_reduce_flushes_per_group(self):
        records = counts_input(n_keys=8, per_key=16)
        got, st = run_reduce(records, MemoryMode.SO, ReduceStrategy.BR)
        assert len(got) == 8
        assert st.extra.get("flushes", 0) >= 1


class TestFallbacks:
    def test_tr_si_behaves_as_g(self):
        """SI falls back to G for TR (cannot stage input)."""
        records = counts_input()
        _, st_si = run_reduce(records, MemoryMode.SI, ReduceStrategy.TR)
        _, st_g = run_reduce(records, MemoryMode.G, ReduceStrategy.TR)
        assert st_si.cycles == st_g.cycles

    def test_tr_sio_behaves_as_so(self):
        records = counts_input()
        _, st_sio = run_reduce(records, MemoryMode.SIO, ReduceStrategy.TR)
        _, st_so = run_reduce(records, MemoryMode.SO, ReduceStrategy.TR)
        assert st_sio.cycles == st_so.cycles

    def test_empty_grouped_set(self):
        dev = Device(DeviceConfig.small(1))
        inter = DeviceRecordSet.upload(dev.gmem, KeyValueSet([(b"k", b"v")]))
        grouped = shuffle(dev.gmem, inter, dev.config).grouped
        # Hack: pretend there are no groups.
        grouped.n_groups = 0
        rt = build_reduce_runtime(
            dev, make_spec(), MemoryMode.G, ReduceStrategy.TR, grouped,
            threads_per_block=64,
        )
        st = launch_reduce(dev, rt)
        assert st.cycles == 0
