"""Tests for hierarchical result collection and overflow handling.

These drive the collector with synthetic kernels so the double-ended
stack, the flush protocol and the direct atomic path are exercised in
isolation from the Map engine.
"""

import pytest

from repro.errors import FrameworkError, KernelFault
from repro.framework import MemoryMode, OutputBuffers, plan_layout
from repro.framework.collector import (
    COMPUTE_DONE,
    CollectorState,
    collect_warp_result,
    direct_emit_warp,
    init_collector,
    request_final_flush,
    wait_loop,
)
from repro.gpu import Device, DeviceConfig
from repro.gpu.instructions import AtomicShared


def make_setup(n_warps=4, out_caps=(4096, 4096, 256), mode=MemoryMode.SO):
    dev = Device(DeviceConfig.small(1))
    layout = plan_layout(
        smem_budget=16 * 1024,
        threads_per_block=32 * n_warps,
        mode=mode,
    )
    out = OutputBuffers.allocate(
        dev.gmem,
        key_capacity=out_caps[0],
        val_capacity=out_caps[1],
        record_capacity=out_caps[2],
    )
    return dev, layout, out


def staged_kernel(records_per_compute_warp, n_compute=2):
    """Build a kernel where warps < n_compute emit, the rest help."""

    def kernel(ctx, layout, out):
        bs = ctx.block_state
        if ctx.warp_id == 0:
            cs = CollectorState(
                layout=layout, out=out, n_warps=ctx.warps_per_block,
                n_compute=n_compute,
            )
            init_collector(ctx, cs)
            bs["cs"] = cs
        yield from ctx.barrier()
        cs = bs["cs"]
        if ctx.warp_id < n_compute:
            for i, (keys, vals) in enumerate(
                records_per_compute_warp(ctx.warp_id)
            ):
                yield from collect_warp_result(ctx, cs, keys, vals)
            done = ctx.smem.atomic_add_u32(layout.flags_off + COMPUTE_DONE, 1)
            yield AtomicShared(addr=layout.flags_off + COMPUTE_DONE, old=done)
            if done == n_compute - 1:
                yield from request_final_flush(ctx, cs)
            else:
                yield from wait_loop(ctx, cs)
        else:
            yield from wait_loop(ctx, cs)

    return kernel


class TestStagedCollection:
    def test_records_reach_global_memory(self):
        dev, layout, out = make_setup()

        def gen(w):
            yield ([f"k{w}a".encode()], [f"v{w}a".encode()])
            yield ([f"k{w}b".encode()], [f"v{w}b".encode()])

        k = staged_kernel(gen)
        dev.launch(k, grid=1, block=128, smem_bytes=layout.smem_bytes,
                   args=(layout, out))
        got = sorted(out.as_record_set().download())
        assert got == sorted([
            (b"k0a", b"v0a"), (b"k0b", b"v0b"),
            (b"k1a", b"v1a"), (b"k1b", b"v1b"),
        ])

    def test_multi_record_warp_results(self):
        dev, layout, out = make_setup()

        def gen(w):
            keys = [f"warp{w}rec{i}".encode() for i in range(8)]
            vals = [f"val{i}".encode() for i in range(8)]
            yield (keys, vals)

        dev.launch(staged_kernel(gen), grid=1, block=128,
                   smem_bytes=layout.smem_bytes, args=(layout, out))
        rs = out.as_record_set()
        assert rs.count == 16
        got = dict(list(rs.download()))
        assert got[b"warp1rec3"] == b"val3"

    def test_overflow_flushes_and_preserves_everything(self):
        """Emit far more than the output area holds: every record must
        still arrive, via multiple overflow flushes."""
        dev, layout, out = make_setup(out_caps=(1 << 16, 1 << 16, 4096))
        n_rounds = 40

        def gen(w):
            for r in range(n_rounds):
                keys = [bytes([65 + w]) * 24 for _ in range(16)]
                vals = [r.to_bytes(4, "little")] * 16
                yield (keys, vals)

        st = dev.launch(staged_kernel(gen), grid=1, block=128,
                        smem_bytes=layout.smem_bytes, args=(layout, out))
        rs = out.as_record_set()
        assert rs.count == 2 * n_rounds * 16
        assert st.extra.get("overflow_flushes", 0) >= 1
        assert st.extra.get("flushes", 0) >= 2  # overflow(s) + final

    def test_amortised_atomics(self):
        """The whole point: global atomics ~ 3 per flush, not 3 per
        warp result."""
        dev, layout, out = make_setup(out_caps=(1 << 16, 1 << 16, 4096))

        def gen(w):
            for r in range(20):
                yield ([b"k" * 8] * 16, [b"v" * 4] * 16)

        st = dev.launch(staged_kernel(gen), grid=1, block=128,
                        smem_bytes=layout.smem_bytes, args=(layout, out))
        n_flushes = st.extra["flushes"]
        assert st.atomics_global == 3 * n_flushes
        assert st.atomics_global < 40  # << 3 * 40 warp results

    def test_warp_result_too_big_for_area(self):
        dev, layout, out = make_setup()
        huge = layout.output_bytes  # one record larger than the area

        def gen(w):
            yield ([b"k" * huge], [b""])

        with pytest.raises(KernelFault, match="exceeds the whole output area"):
            dev.launch(staged_kernel(gen, n_compute=1), grid=1, block=128,
                       smem_bytes=layout.smem_bytes, args=(layout, out))

    def test_empty_emission_is_noop(self):
        dev, layout, out = make_setup()

        def gen(w):
            yield ([], [])

        dev.launch(staged_kernel(gen), grid=1, block=128,
                   smem_bytes=layout.smem_bytes, args=(layout, out))
        assert out.as_record_set().count == 0

    def test_unbalanced_compute_warps(self):
        """One warp emits 30 results, the other none (the II-style
        uneven map computation the paper discusses)."""
        dev, layout, out = make_setup()

        def gen(w):
            if w == 0:
                for r in range(30):
                    yield ([f"r{r:03d}".encode()] * 4, [b"x"] * 4)

        dev.launch(staged_kernel(gen), grid=1, block=128,
                   smem_bytes=layout.smem_bytes, args=(layout, out))
        assert out.as_record_set().count == 120


class TestDirectPath:
    def test_direct_emit(self):
        dev, layout, out = make_setup(mode=MemoryMode.G)

        def k(ctx, out):
            keys = [f"w{ctx.warp_id}k{i}".encode() for i in range(4)]
            vals = [f"v{i}".encode() for i in range(4)]
            yield from direct_emit_warp(ctx, out, keys, vals)

        dev.launch(k, grid=1, block=128, smem_bytes=1024, args=(out,))
        rs = out.as_record_set()
        assert rs.count == 16
        got = dict(list(rs.download()))
        assert got[b"w3k2"] == b"v2"

    def test_direct_emit_atomics_per_warp_result(self):
        dev, layout, out = make_setup(mode=MemoryMode.G)

        def k(ctx, out):
            for _ in range(5):
                yield from direct_emit_warp(ctx, out, [b"k"], [b"v"])

        st = dev.launch(k, grid=1, block=128, smem_bytes=1024, args=(out,))
        # 4 warps x 5 results x 3 counters.
        assert st.atomics_global == 60

    def test_direct_emit_capacity_enforced(self):
        dev, layout, out = make_setup(mode=MemoryMode.G, out_caps=(64, 64, 4))

        def k(ctx, out):
            yield from direct_emit_warp(ctx, out, [b"k" * 40] * 8, [b"v"] * 8)

        with pytest.raises(KernelFault, match="overflow"):
            dev.launch(k, grid=1, block=32, smem_bytes=1024, args=(out,))

    def test_interleaving_across_blocks(self):
        """Atomic reservations from many blocks never overlap."""
        dev, layout, out = make_setup(mode=MemoryMode.G,
                                      out_caps=(1 << 16, 1 << 16, 4096))

        def k(ctx, out):
            tag = f"b{ctx.block_id}w{ctx.warp_id}".encode()
            yield from direct_emit_warp(ctx, out, [tag] * 8,
                                        [bytes([i]) for i in range(8)])

        dev.launch(k, grid=8, block=64, smem_bytes=1024, args=(out,))
        rs = out.as_record_set()
        assert rs.count == 8 * 2 * 8
        records = list(rs.download())
        assert len(set(records)) == len(set(
            (k_, v) for k_, v in records
        ))
        # Every (tag, value) pair present exactly once.
        assert len({(k_, v) for k_, v in records}) == 8 * 2 * 8
