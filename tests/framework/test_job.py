"""Tests for end-to-end job orchestration."""

import struct

import pytest

from repro.errors import FrameworkError
from repro.framework import KeyValueSet, MemoryMode, ReduceStrategy, run_job
from repro.framework.api import MapReduceSpec
from repro.gpu import DeviceConfig


def word_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, struct.pack("<I", 1))


def word_reduce(key, values, emit, const):
    emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))


def make_spec(**kw):
    d = dict(name="mini_wc", map_record=word_map, reduce_record=word_reduce,
             combine=lambda a, b: struct.pack(
                 "<I", struct.unpack("<I", a)[0] + struct.unpack("<I", b)[0]),
             finalize=lambda k, acc, n: (k, acc))
    d.update(kw)
    return MapReduceSpec(**d)


def make_input():
    lines = [b"the cat sat", b"the dog sat", b"a cat ran far away today"]
    return KeyValueSet([(ln, struct.pack("<I", i)) for i, ln in enumerate(lines)])


CFG = DeviceConfig.small(2)


class TestRunJob:
    def test_full_job(self):
        res = run_job(make_spec(), make_input(), mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG, threads_per_block=64)
        got = dict(list(res.output))
        assert got[b"the"] == struct.pack("<I", 2)
        assert got[b"sat"] == struct.pack("<I", 2)
        assert got[b"dog"] == struct.pack("<I", 1)
        assert res.intermediate_count == 12

    def test_map_only_job(self):
        res = run_job(make_spec(), make_input(), mode=MemoryMode.G,
                      strategy=None, config=CFG, threads_per_block=64)
        assert len(res.output) == 12
        assert res.timings.shuffle == 0
        assert res.timings.reduce == 0

    def test_all_phase_timings_positive(self):
        # backend pinned: kernel cycle counts are the simulator's;
        # functional backends report zero for map/shuffle/reduce.
        res = run_job(make_spec(), make_input(), mode=MemoryMode.G,
                      strategy=ReduceStrategy.TR, config=CFG,
                      threads_per_block=64, backend="sim")
        t = res.timings
        assert t.io_in > 0 and t.map > 0 and t.shuffle > 0
        assert t.reduce > 0 and t.io_out > 0
        assert t.total == pytest.approx(
            t.io_in + t.map + t.shuffle + t.reduce + t.io_out
        )
        assert t.io == t.io_in + t.io_out

    def test_timings_dict(self):
        res = run_job(make_spec(), make_input(), mode=MemoryMode.G,
                      strategy=None, config=CFG, threads_per_block=64)
        d = res.timings.as_dict()
        assert set(d) == {"io_in", "map", "shuffle", "reduce", "io_out", "total"}

    def test_br_strategy(self):
        res = run_job(make_spec(), make_input(), mode=MemoryMode.SI,
                      strategy=ReduceStrategy.BR, config=CFG,
                      threads_per_block=64)
        got = dict(list(res.output))
        assert got[b"cat"] == struct.pack("<I", 2)

    def test_empty_input_yields_empty_output(self):
        # Degenerate inputs are legal (the differential fuzzer's bread
        # and butter): an empty job must return an empty output, not
        # raise.
        res = run_job(make_spec(), KeyValueSet(), config=CFG)
        assert len(res.output) == 0
        assert res.intermediate_count == 0

    def test_strategy_without_reduce_fn_rejected(self):
        spec = make_spec(reduce_record=None, combine=None, finalize=None)
        with pytest.raises(FrameworkError):
            run_job(spec, make_input(), strategy=ReduceStrategy.TR, config=CFG)

    def test_result_metadata(self):
        res = run_job(make_spec(), make_input(), mode=MemoryMode.SO,
                      strategy=ReduceStrategy.TR, config=CFG,
                      threads_per_block=64)
        assert res.spec_name == "mini_wc"
        assert res.mode is MemoryMode.SO
        assert res.strategy is ReduceStrategy.TR
        assert res.total_cycles == res.timings.total

    def test_shared_device_allows_sequential_jobs(self):
        from repro.gpu import Device

        dev = Device(CFG)
        r1 = run_job(make_spec(), make_input(), mode=MemoryMode.G,
                     strategy=None, device=dev, threads_per_block=64)
        r2 = run_job(make_spec(), make_input(), mode=MemoryMode.SIO,
                     strategy=None, device=dev, threads_per_block=64)
        assert sorted(zip(r1.output.keys, r1.output.values)) == sorted(
            zip(r2.output.keys, r2.output.values)
        )


class TestAutoMode:
    def test_mode_auto_runs_and_matches(self):
        """run_job(mode='auto') autotunes and still matches the oracle."""
        from repro.cpu_ref import normalised, reference_job

        spec = make_spec()
        inp = make_input()
        ref = normalised(reference_job(spec, inp, ReduceStrategy.TR))
        res = run_job(spec, inp, mode="auto", strategy=ReduceStrategy.TR,
                      config=CFG)
        assert normalised(res.output) == ref
        assert isinstance(res.mode, MemoryMode)

    def test_mode_string_coerced(self):
        res = run_job(make_spec(), make_input(), mode="SIO", strategy=None,
                      config=CFG, threads_per_block=64)
        assert res.mode is MemoryMode.SIO


class TestAdaptivePerPhaseModes:
    def test_reduce_mode_override(self):
        """Section IV-F future work: SIO for Map, G for Reduce."""
        from repro.cpu_ref import normalised, reference_job

        spec = make_spec()
        inp = make_input()
        ref = normalised(reference_job(spec, inp, ReduceStrategy.TR))
        res = run_job(spec, inp, mode=MemoryMode.SIO, reduce_mode=MemoryMode.G,
                      strategy=ReduceStrategy.TR, config=CFG,
                      threads_per_block=64)
        assert normalised(res.output) == ref

    def test_adaptive_beats_uniform_sio(self):
        """The paper's own evaluation implies SIO-map + G-reduce
        should beat uniform SIO end-to-end for Word Count (its reduce
        runs best under G)."""
        from repro.workloads import WordCount

        wc = WordCount()
        inp = wc.generate("small", seed=5, scale=0.5)
        spec = wc.spec()
        from repro.gpu import DeviceConfig

        cfg = DeviceConfig.gtx280()
        uniform = run_job(spec, inp, mode=MemoryMode.SIO,
                          strategy=ReduceStrategy.TR, config=cfg)
        adaptive = run_job(spec, inp, mode=MemoryMode.SIO,
                           reduce_mode=MemoryMode.G,
                           strategy=ReduceStrategy.TR, config=cfg)
        assert adaptive.timings.map == uniform.timings.map
        assert adaptive.timings.reduce <= uniform.timings.reduce
        assert adaptive.total_cycles <= uniform.total_cycles
