"""Tests for input tiling and the cooperative stage-in copy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FrameworkError, KernelFault
from repro.framework import DeviceRecordSet, KeyValueSet, MemoryMode, plan_layout
from repro.framework.staging import (
    Tile,
    plan_tiles_staged,
    plan_tiles_unstaged,
    stage_in,
)
from repro.gpu import Device, DeviceConfig


def layout_for(mode=MemoryMode.SI, tpb=64):
    return plan_layout(smem_budget=16 * 1024, threads_per_block=tpb, mode=mode)


class TestPlanTilesStaged:
    def test_covers_all_records_without_overlap(self):
        lay = layout_for()
        keys = [30] * 500
        vals = [10] * 500
        tiles = plan_tiles_staged(lay, keys, vals)
        assert tiles[0].start == 0
        for a, b in zip(tiles, tiles[1:]):
            assert b.start == a.end
        assert tiles[-1].end == 500

    def test_variable_sizes_pack_greedily(self):
        lay = layout_for()
        keys = [10, 5000, 10, 10]
        vals = [0, 0, 0, 0]
        tiles = plan_tiles_staged(lay, keys, vals)
        assert [t.count for t in tiles][0] >= 1
        assert sum(t.count for t in tiles) == 4

    def test_oversized_record_rejected(self):
        lay = layout_for()
        with pytest.raises(FrameworkError, match="exceeds the input area"):
            plan_tiles_staged(lay, [lay.input_bytes + 100], [0])

    def test_stage_values_false_ignores_value_bytes(self):
        lay = layout_for()
        keys = [8] * 100
        vals = [10 ** 6] * 100  # enormous values
        tiles = plan_tiles_staged(lay, keys, vals, stage_values=False)
        assert len(tiles) == 1

    def test_stage_keys_false_ignores_key_bytes(self):
        lay = layout_for()
        tiles = plan_tiles_staged(lay, [10 ** 6] * 10, [8] * 10, stage_keys=False)
        assert len(tiles) == 1

    @given(st.lists(st.integers(1, 200), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_partition_property(self, sizes):
        lay = layout_for()
        tiles = plan_tiles_staged(lay, sizes, [4] * len(sizes))
        assert sum(t.count for t in tiles) == len(sizes)
        assert all(t.count > 0 for t in tiles)


class TestPlanTilesUnstaged:
    def test_fixed_size_tiles(self):
        tiles = plan_tiles_unstaged(1000, 128, rounds_per_tile=2)
        assert all(t.count == 256 for t in tiles[:-1])
        assert sum(t.count for t in tiles) == 1000

    def test_single_small_tile(self):
        tiles = plan_tiles_unstaged(10, 128)
        assert len(tiles) == 1
        assert tiles[0] == Tile(0, 10)

    def test_empty(self):
        assert plan_tiles_unstaged(0, 128) == []


class TestStageIn:
    def make_input(self, dev, n=40):
        kvs = KeyValueSet(
            [(f"key{i:04d}".encode(), f"value{i:05d}!".encode()) for i in range(n)]
        )
        return kvs, DeviceRecordSet.upload(dev.gmem, kvs)

    def test_bytes_land_in_shared_memory(self):
        dev = Device(DeviceConfig.small(1))
        kvs, d_in = self.make_input(dev)
        lay = layout_for()
        tile = Tile(0, 40)
        seen = {}

        def k(ctx, lay, d_in, tile):
            stg = yield from stage_in(ctx, lay, d_in, tile)
            yield from ctx.barrier()
            if ctx.warp_id == 0:
                # Record 7's key as staged in shared memory.
                ko = d_in.gmem.read_u32(d_in.key_dir_addr + 8 * 7)
                seen["key7"] = ctx.smem.read(
                    stg.keys_off + ko - (stg.g_key_base - d_in.keys_addr), 7
                )
                vo = d_in.gmem.read_u32(d_in.val_dir_addr + 8 * 7)
                seen["val7"] = ctx.smem.read(
                    stg.vals_off + vo - (stg.g_val_base - d_in.vals_addr), 11
                )

        dev.launch(k, grid=1, block=64, smem_bytes=lay.smem_bytes,
                   args=(lay, d_in, tile))
        assert seen["key7"] == b"key0007"
        assert seen["val7"] == b"value00007!"

    def test_coalesced_transactions(self):
        """Stage-in must read each byte ~once, coalesced: transactions
        close to payload/64."""
        dev = Device(DeviceConfig.small(1))
        kvs, d_in = self.make_input(dev, n=64)
        lay = layout_for()
        tile = Tile(0, 64)

        def k(ctx, lay, d_in, tile):
            yield from stage_in(ctx, lay, d_in, tile)
            yield from ctx.barrier()

        st = dev.launch(k, grid=1, block=64, smem_bytes=lay.smem_bytes,
                        args=(lay, d_in, tile))
        payload = 64 * (7 + 11) + 2 * 8 * 64
        # Chunking across 2 warps, 4 segments: allow modest slack.
        assert st.global_transactions <= payload // 64 + 16

    def test_partial_tile(self):
        dev = Device(DeviceConfig.small(1))
        kvs, d_in = self.make_input(dev, n=10)
        lay = layout_for()
        tile = Tile(4, 3)

        def k(ctx, lay, d_in, tile):
            stg = yield from stage_in(ctx, lay, d_in, tile)
            yield from ctx.barrier()
            if ctx.warp_id == 0:
                assert ctx.smem.read(stg.keys_off, 7) == b"key0004"

        dev.launch(k, grid=1, block=64, smem_bytes=lay.smem_bytes,
                   args=(lay, d_in, tile))

    def test_tile_too_big_raises(self):
        dev = Device(DeviceConfig.small(1))
        kvs = KeyValueSet([(b"k" * 6000, b"v" * 6000)] * 2)
        d_in = DeviceRecordSet.upload(dev.gmem, kvs)
        lay = layout_for()

        def k(ctx, lay, d_in):
            yield from stage_in(ctx, lay, d_in, Tile(0, 2))

        with pytest.raises(KernelFault, match="input area"):
            dev.launch(k, grid=1, block=64, smem_bytes=lay.smem_bytes,
                       args=(lay, d_in))
