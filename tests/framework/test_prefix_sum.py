"""Tests for scan primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.framework.prefix_sum import (
    block_exclusive_scan,
    device_scan_cycles,
    exclusive_scan,
    warp_exclusive_scan,
)
from repro.gpu import Device, DeviceConfig


class TestExclusiveScan:
    def test_basic(self):
        pre, tot = exclusive_scan([3, 1, 4, 1, 5])
        assert pre == [0, 3, 4, 8, 9]
        assert tot == 14

    def test_empty(self):
        assert exclusive_scan([]) == ([], 0)

    @given(st.lists(st.integers(0, 1000), max_size=64))
    def test_property(self, vals):
        pre, tot = exclusive_scan(vals)
        assert tot == sum(vals)
        for i, p in enumerate(pre):
            assert p == sum(vals[:i])


class TestWarpScan:
    def test_runs_on_device_and_matches_pure(self):
        dev = Device(DeviceConfig.small(1))
        got = {}

        def k(ctx):
            pre, tot = yield from warp_exclusive_scan(ctx, [2, 4, 6])
            got["pre"], got["tot"] = pre, tot

        st_ = dev.launch(k, grid=1, block=32, smem_bytes=256)
        assert got == {"pre": [0, 2, 6], "tot": 12}
        # 5 Hillis-Steele rounds: reads + writes + compute.
        assert st_.shared_ops == 10
        assert st_.compute_ops == 5

    def test_lockstep_no_barriers(self):
        """In-warp scan needs no __syncthreads (Section III-D)."""
        dev = Device(DeviceConfig.small(1))

        def k(ctx):
            yield from warp_exclusive_scan(ctx, list(range(32)))

        st_ = dev.launch(k, grid=1, block=32, smem_bytes=256)
        assert st_.barriers == 0


class TestBlockScan:
    def test_block_scan_bases(self):
        dev = Device(DeviceConfig.small(1))
        bases = {}

        def k(ctx):
            base = yield from block_exclusive_scan(ctx, 0, 10 * (ctx.warp_id + 1))
            bases[ctx.warp_id] = base

        dev.launch(k, grid=1, block=128, smem_bytes=256)
        # totals 10,20,30,40 -> bases 0,10,30,60
        assert bases == {0: 0, 1: 10, 2: 30, 3: 60}


class TestDeviceScanModel:
    def test_zero_is_free(self):
        cfg = DeviceConfig.gtx280()
        assert device_scan_cycles(0, cfg.timing, cfg.mp_count) == 0.0

    def test_monotone_in_n(self):
        cfg = DeviceConfig.gtx280()
        c1 = device_scan_cycles(1000, cfg.timing, cfg.mp_count)
        c2 = device_scan_cycles(100000, cfg.timing, cfg.mp_count)
        assert c2 > c1 > 0

    def test_dominated_by_latency_for_tiny_inputs(self):
        cfg = DeviceConfig.gtx280()
        c = device_scan_cycles(8, cfg.timing, cfg.mp_count)
        assert c == pytest.approx(2 * cfg.timing.global_latency, rel=0.5)
