"""Tests for the runtime autotuner (the paper's Section VI extension)."""

import struct

import pytest

from repro.framework import KeyValueSet, MemoryMode
from repro.framework.api import MapReduceSpec
from repro.framework.autotune import (
    TuningChoice,
    autotune,
    probe_workload,
    suggest,
)
from repro.gpu import DeviceConfig
from repro.workloads import InvertedIndex, WordCount


def heavy_emit_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, struct.pack("<I", 1))


def silent_map(key, value, emit, const):
    pass


class TestProbe:
    def test_counts_emissions_and_bytes(self):
        spec = MapReduceSpec(name="p", map_record=heavy_emit_map)
        inp = KeyValueSet([(b"aa bb cc", b"xxxx")] * 10)
        probe = probe_workload(spec, inp)
        assert probe.records == 10
        assert probe.emissions == 30
        assert probe.in_bytes == 10 * 12
        assert probe.out_bytes == 30 * (2 + 4)
        assert probe.emissions_per_record == 3.0

    def test_sample_bound(self):
        spec = MapReduceSpec(name="p", map_record=heavy_emit_map)
        inp = KeyValueSet([(b"a", b"")] * 1000)
        probe = probe_workload(spec, inp, sample=50)
        assert probe.records == 50

    def test_zero_output(self):
        spec = MapReduceSpec(name="p", map_record=silent_map)
        inp = KeyValueSet([(b"abc", b"")] * 5)
        probe = probe_workload(spec, inp)
        assert probe.out_in_ratio == 0.0
        assert probe.emissions == 0

    def test_max_record_bytes(self):
        spec = MapReduceSpec(name="p", map_record=silent_map)
        inp = KeyValueSet([(b"a" * 100, b"b" * 50), (b"c", b"d")])
        probe = probe_workload(spec, inp)
        assert probe.max_record_bytes == 150


class TestSuggest:
    def test_heavy_emitters_get_output_leaning_sio(self):
        wc = WordCount()
        inp = wc.generate("small", seed=0, scale=0.1)
        probe = probe_workload(wc.spec(), inp)
        choice = suggest(probe)
        assert choice.mode is MemoryMode.SIO
        assert choice.io_ratio < 0.5

    def test_big_scanning_records_get_si(self):
        ii = InvertedIndex()
        inp = ii.generate("small", seed=0, scale=0.1)
        probe = probe_workload(ii.spec(), inp)
        choice = suggest(probe)
        assert choice.mode is MemoryMode.SI
        assert choice.io_ratio > 0.5

    def test_huge_records_avoid_input_staging(self):
        probe_huge = probe_workload(
            MapReduceSpec(name="x", map_record=silent_map),
            KeyValueSet([(b"k" * 4000, b"")] * 4),
        )
        choice = suggest(probe_huge)
        assert choice.io_ratio <= 0.5


class TestAutotune:
    def test_heuristic_only(self):
        wc = WordCount()
        inp = wc.generate("small", seed=1, scale=0.1)
        report = autotune(wc.spec(), inp, measure=False,
                          config=DeviceConfig.small(2))
        assert report.measured == []
        assert report.best == report.suggestion

    def test_measured_search_finds_a_winner(self):
        wc = WordCount()
        inp = wc.generate("small", seed=1, scale=0.2)
        report = autotune(
            wc.spec(), inp, config=DeviceConfig.small(2),
            sample_records=256, block_sizes=(128,),
            io_ratios=(0.25, 0.6),
        )
        assert len(report.measured) >= 4
        best = report.best
        assert best.cycles is not None
        assert all(
            best.cycles <= c.cycles for c in report.measured if c.cycles
        )

    def test_wc_measured_choice_stages_output(self):
        """For WC the measured winner must stage output (the paper's
        central result)."""
        wc = WordCount()
        inp = wc.generate("small", seed=2, scale=0.3)
        report = autotune(
            wc.spec(), inp, config=DeviceConfig.gtx280(),
            sample_records=512, block_sizes=(128,),
        )
        assert report.best.mode in (MemoryMode.SO, MemoryMode.SIO)

    def test_invalid_candidates_skipped(self):
        """32-thread SO candidates are impossible; search must skip,
        not die."""
        wc = WordCount()
        inp = wc.generate("small", seed=3, scale=0.1)
        report = autotune(
            wc.spec(), inp, config=DeviceConfig.small(2),
            block_sizes=(32,),
            modes=(MemoryMode.G, MemoryMode.SO),
        )
        modes = {c.mode for c in report.measured}
        assert MemoryMode.SO not in modes
        assert MemoryMode.G in modes
