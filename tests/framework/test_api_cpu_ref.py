"""Tests for the public spec API and the CPU reference oracle itself."""

import struct

import pytest

from repro.cpu_ref import (
    normalised,
    reference_job,
    reference_map,
    reference_reduce,
    reference_shuffle,
)
from repro.errors import FrameworkError
from repro.framework import KeyValueSet, ReduceStrategy
from repro.framework.api import MapReduceSpec


def wc_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, struct.pack("<I", 1))


def wc_reduce(key, values, emit, const):
    emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))


class TestSpecValidation:
    def test_minimal_spec_valid(self):
        MapReduceSpec(name="m", map_record=wc_map).validate()

    def test_map_must_be_callable(self):
        with pytest.raises(FrameworkError):
            MapReduceSpec(name="m", map_record="not callable").validate()

    def test_combine_requires_finalize(self):
        spec = MapReduceSpec(name="m", map_record=wc_map,
                             combine=lambda a, b: a)
        with pytest.raises(FrameworkError, match="finalize"):
            spec.validate()

    def test_io_ratio_bounds(self):
        with pytest.raises(FrameworkError):
            MapReduceSpec(name="m", map_record=wc_map,
                          io_ratio=0.01).validate()

    def test_has_reduce(self):
        assert not MapReduceSpec(name="m", map_record=wc_map).has_reduce
        assert MapReduceSpec(name="m", map_record=wc_map,
                             reduce_record=wc_reduce).has_reduce

    def test_output_capacity_scales(self):
        spec = MapReduceSpec(name="m", map_record=wc_map,
                             out_bytes_factor=2.0, out_records_factor=4.0)
        k, v, r = spec.output_capacity(None, payload=1000, count=10)
        assert k >= 2000 and v >= 2000 and r >= 40


class TestReferenceOracle:
    def make_input(self):
        return KeyValueSet([
            (b"aa bb", struct.pack("<I", 0)),
            (b"bb cc bb", struct.pack("<I", 1)),
        ])

    def test_reference_map(self):
        spec = MapReduceSpec(name="m", map_record=wc_map)
        inter = reference_map(spec, self.make_input())
        assert len(inter) == 5
        assert inter.keys.count(b"bb") == 3

    def test_reference_shuffle_sorted(self):
        spec = MapReduceSpec(name="m", map_record=wc_map)
        grouped = reference_shuffle(reference_map(spec, self.make_input()))
        keys = [k for k, _ in grouped]
        assert keys == sorted(keys) == [b"aa", b"bb", b"cc"]
        counts = {k: len(vs) for k, vs in grouped}
        assert counts == {b"aa": 1, b"bb": 3, b"cc": 1}

    def test_reference_reduce_tr(self):
        spec = MapReduceSpec(name="m", map_record=wc_map,
                             reduce_record=wc_reduce)
        out = reference_job(spec, self.make_input(), ReduceStrategy.TR)
        got = dict(list(out))
        assert got[b"bb"] == struct.pack("<I", 3)

    def test_reference_reduce_br_uses_combine(self):
        spec = MapReduceSpec(
            name="m", map_record=wc_map,
            combine=lambda a, b: struct.pack(
                "<I", struct.unpack("<I", a)[0] + struct.unpack("<I", b)[0]
            ),
            finalize=lambda k, acc, n: (k + b"!", acc),
        )
        grouped = reference_shuffle(reference_map(spec, self.make_input()))
        out = reference_reduce(spec, grouped, ReduceStrategy.BR)
        got = dict(list(out))
        assert got[b"bb!"] == struct.pack("<I", 3)

    def test_reference_job_map_only(self):
        spec = MapReduceSpec(name="m", map_record=wc_map)
        out = reference_job(spec, self.make_input(), None)
        assert len(out) == 5

    def test_normalised_sorts(self):
        a = KeyValueSet([(b"z", b"1"), (b"a", b"2")])
        assert normalised(a) == [(b"a", b"2"), (b"z", b"1")]

    def test_const_reaches_reference_map(self):
        spec = MapReduceSpec(
            name="m",
            map_record=lambda k, v, emit, const: emit(const.to_bytes(), b""),
            const_bytes=b"CONST",
        )
        out = reference_map(spec, self.make_input())
        assert all(k == b"CONST" for k in out.keys)
