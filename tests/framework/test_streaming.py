"""Tests for batched/streamed execution with transfer overlap."""

import struct

import pytest

from repro.cpu_ref import normalised, reference_job
from repro.errors import FrameworkError
from repro.framework import KeyValueSet, MemoryMode, ReduceStrategy, run_job
from repro.framework.api import MapReduceSpec
from repro.framework.streaming import (
    run_streamed_job,
    split_batches,
)
from repro.gpu import DeviceConfig
from repro.workloads import WordCount

CFG = DeviceConfig.small(2)


def dup_map(key, value, emit, const):
    emit(key.to_bytes(), value.to_bytes())


def make_input(n=200):
    return KeyValueSet(
        [(f"key{i:04d}".encode(), struct.pack("<I", i)) for i in range(n)]
    )


class TestSplitBatches:
    def test_partition_is_exact(self):
        inp = make_input(103)
        batches = split_batches(inp, 4)
        assert sum(len(b) for b in batches) == 103
        rejoined = [kv for b in batches for kv in b]
        assert rejoined == list(inp)

    def test_single_batch(self):
        inp = make_input(7)
        assert len(split_batches(inp, 1)) == 1

    def test_more_batches_than_records(self):
        inp = make_input(3)
        batches = split_batches(inp, 10)
        assert sum(len(b) for b in batches) == 3
        assert all(len(b) >= 1 for b in batches)

    def test_invalid_count(self):
        with pytest.raises(FrameworkError):
            split_batches(make_input(4), 0)


class TestStreamedJob:
    def test_map_only_output_matches_single_shot(self):
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        inp = make_input(150)
        single = run_job(spec, inp, mode=MemoryMode.SIO, config=CFG)
        streamed = run_streamed_job(spec, inp, n_batches=4,
                                    mode=MemoryMode.SIO, config=CFG)
        assert normalised(streamed.job.output) == normalised(single.output)

    def test_full_job_matches_oracle(self):
        wc = WordCount()
        inp = wc.generate("small", seed=1, scale=0.3)
        spec = wc.spec()
        ref = normalised(reference_job(spec, inp, ReduceStrategy.TR))
        streamed = run_streamed_job(
            spec, inp, n_batches=3, mode=MemoryMode.SO,
            strategy=ReduceStrategy.TR, config=CFG,
        )
        assert normalised(streamed.job.output) == ref

    def test_batch_traces_recorded(self):
        # backend pinned: per-batch upload/map cycles are sim-only.
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        streamed = run_streamed_job(spec, make_input(100), n_batches=4,
                                    config=CFG, backend="sim")
        assert len(streamed.batches) == 4
        assert sum(b.records for b in streamed.batches) == 100
        assert all(b.upload_cycles > 0 and b.map_cycles > 0
                   for b in streamed.batches)

    def test_overlap_saves_time(self):
        """Double buffering hides the smaller of (map, next upload)."""
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        streamed = run_streamed_job(spec, make_input(400), n_batches=4,
                                    config=CFG, backend="sim")
        assert streamed.pipelined_map_io < streamed.serial_map_io
        assert streamed.overlap_saving > 0

    def test_pipeline_model_bounds(self):
        """Pipelined time is bounded below by both total uploads and
        total map cycles (the classic pipeline bound)."""
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        s = run_streamed_job(spec, make_input(300), n_batches=5, config=CFG)
        total_up = sum(b.upload_cycles for b in s.batches)
        total_map = sum(b.map_cycles for b in s.batches)
        assert s.pipelined_map_io >= max(total_up, total_map) - 1e-6
        assert s.pipelined_map_io <= s.serial_map_io + 1e-6

    def test_no_overlap_mode(self):
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        s = run_streamed_job(spec, make_input(100), n_batches=2,
                             overlap=False, config=CFG)
        t = s.job.timings
        assert t.io_in + t.map == pytest.approx(s.serial_map_io)

    def test_empty_input_streams_empty_output(self):
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        s = run_streamed_job(spec, KeyValueSet(), config=CFG)
        assert len(s.job.output) == 0
        assert s.batches == []

    def test_single_batch_equals_job_shape(self):
        spec = MapReduceSpec(name="dup", map_record=dup_map)
        s = run_streamed_job(spec, make_input(64), n_batches=1, config=CFG)
        assert s.pipelined_map_io == s.serial_map_io
