"""Tests for device-wide (inter-block) barriers."""

import pytest

from repro.errors import FrameworkError
from repro.framework.global_sync import GlobalBarrier, max_resident_blocks
from repro.gpu import Device, DeviceConfig


def make_device(mps=2):
    return Device(DeviceConfig.small(mps))


class TestResidency:
    def test_max_resident_blocks(self):
        cfg = DeviceConfig.gtx280()
        assert max_resident_blocks(cfg, 64, 0) == 8 * 30
        assert max_resident_blocks(cfg, 512, 0) == 2 * 30

    def test_oversubscribed_grid_rejected(self):
        dev = make_device(1)
        with pytest.raises(FrameworkError, match="resident"):
            GlobalBarrier.allocate(dev, grid=100, threads_per_block=512)

    def test_unknown_scheme_rejected(self):
        dev = make_device(1)
        with pytest.raises(FrameworkError, match="scheme"):
            GlobalBarrier.allocate(dev, grid=2, threads_per_block=64,
                                   scheme="telepathy")


@pytest.mark.parametrize("scheme", ["atomic", "lockfree"])
class TestBarrierSemantics:
    def test_phases_are_globally_ordered(self, scheme):
        """Block b writes slot b in phase 0; in phase 1 every block
        reads *all* slots — only a correct device barrier makes the
        reads complete."""
        dev = make_device(2)
        grid = 8
        data = dev.gmem.alloc(4 * grid)
        results = {}
        bar = GlobalBarrier.allocate(dev, grid=grid, threads_per_block=64,
                                     scheme=scheme)

        def k(ctx, data, bar):
            if ctx.warp_id == 0:
                ctx.gmem.write_u32(data + 4 * ctx.block_id,
                                   100 + ctx.block_id)
                yield from ctx.gwrite(data + 4 * ctx.block_id, b"")
            yield from bar.sync(ctx, epoch=0)
            if ctx.warp_id == 0:
                vals = [ctx.gmem.read_u32(data + 4 * b) for b in range(grid)]
                results[ctx.block_id] = vals
                yield from ctx.gtouch_read([(data, 4 * grid)])

        dev.launch(k, grid=grid, block=64, args=(data, bar))
        for b in range(grid):
            assert results[b] == [100 + i for i in range(grid)]

    def test_reusable_across_epochs(self, scheme):
        dev = make_device(2)
        grid = 4
        counter = dev.gmem.alloc(4)
        checkpoints = []
        bar = GlobalBarrier.allocate(dev, grid=grid, threads_per_block=32,
                                     scheme=scheme)

        def k(ctx, counter, bar):
            for epoch in range(3):
                if ctx.warp_id == 0:
                    yield from ctx.atomic_add_global(counter, 1)
                yield from bar.sync(ctx, epoch)
                if ctx.block_id == 0 and ctx.warp_id == 0:
                    checkpoints.append(ctx.gmem.read_u32(counter))

        dev.launch(k, grid=grid, block=32, args=(counter, bar))
        # After each barrier every block's increment for that epoch
        # must be visible (blocks may legitimately have started the
        # next epoch already, so >= not ==).
        assert len(checkpoints) == 3
        for i, v in enumerate(checkpoints):
            assert v >= 4 * (i + 1)
        assert checkpoints[-1] <= 12

    def test_stragglers_are_waited_for(self, scheme):
        dev = make_device(2)
        grid = 6
        order = []
        bar = GlobalBarrier.allocate(dev, grid=grid, threads_per_block=32,
                                     scheme=scheme)

        def k(ctx, bar):
            yield from ctx.compute(1000.0 * ctx.block_id)  # skewed arrivals
            order.append(("arrive", ctx.block_id))
            yield from bar.sync(ctx, epoch=0)
            order.append(("leave", ctx.block_id))

        dev.launch(k, grid=grid, block=32, args=(bar,))
        last_arrival = max(i for i, (w, _) in enumerate(order)
                           if w == "arrive")
        first_leave = min(i for i, (w, _) in enumerate(order) if w == "leave")
        assert last_arrival < first_leave


class TestSchemeCosts:
    def test_atomic_scheme_serialises_on_counter(self):
        """The atomic barrier concentrates traffic on one address —
        measurable as atomic-unit conflicts; the lock-free one has
        none (that is its point)."""

        def run(scheme):
            dev = make_device(2)
            bar = GlobalBarrier.allocate(dev, grid=12, threads_per_block=32,
                                         scheme=scheme)

            def k(ctx, bar):
                yield from bar.sync(ctx, epoch=0)

            return dev.launch(k, grid=12, block=32, args=(bar,))

        atomic = run("atomic")
        lockfree = run("lockfree")
        assert atomic.atomic_conflicts > 0
        assert lockfree.atomics_global == 0
