"""Boundary tests for the double-ended output stack (paper Fig. 4b).

The overflow decision is ``left + right + need <= output_bytes``: an
emission that *exactly* fills the remaining capacity must be accepted
without a flush, and one byte more must flush first — with the two
ends never overlapping in either case.  These are the off-by-one
corners the sanitizer's interval checker watches; here they are pinned
as plain functional tests.
"""

from repro.framework import MemoryMode, OutputBuffers, plan_layout
from repro.framework.collector import (
    COMPUTE_DONE,
    CollectorState,
    collect_warp_result,
    init_collector,
    request_final_flush,
)
from repro.framework.layout import OUT_DIR_PER_RECORD, WARP_RESULT_HEADER
from repro.gpu import Device, DeviceConfig
from repro.gpu.instructions import AtomicShared


def setup(n_warps=1):
    dev = Device(DeviceConfig.small(1))
    layout = plan_layout(smem_budget=16 * 1024,
                         threads_per_block=32 * n_warps,
                         mode=MemoryMode.SO)
    out = OutputBuffers.allocate(dev.gmem, key_capacity=1 << 16,
                                 val_capacity=1 << 16, record_capacity=4096)
    return dev, layout, out


def one_warp_kernel(emissions):
    """A single compute warp collects ``emissions`` then final-flushes."""

    def k(ctx, layout, out):
        cs = CollectorState(layout=layout, out=out,
                            n_warps=ctx.warps_per_block, n_compute=1)
        init_collector(ctx, cs)
        yield from ctx.barrier()
        for keys, vals in emissions:
            yield from collect_warp_result(ctx, cs, keys, vals)
        done = ctx.smem.atomic_add_u32(layout.flags_off + COMPUTE_DONE, 1)
        yield AtomicShared(addr=layout.flags_off + COMPUTE_DONE, old=done)
        yield from request_final_flush(ctx, cs)

    return k


def record_cost(key, val):
    """Stack bytes one single-record warp result consumes."""
    return WARP_RESULT_HEADER + OUT_DIR_PER_RECORD + len(key) + len(val)


class TestExactFill:
    def test_exact_fill_does_not_flush(self):
        """An emission that lands the stack at exactly full capacity
        must be accepted in place — a spurious flush here would be
        the off-by-one (`<` for `<=`) bug."""
        dev, layout, out = setup()
        first_k, first_v = b"a" * 16, b"b" * 8
        used = record_cost(first_k, first_v)
        pad = layout.output_bytes - used - (WARP_RESULT_HEADER
                                            + OUT_DIR_PER_RECORD + 4)
        emissions = [([first_k], [first_v]), ([b"c" * pad], [b"d" * 4])]
        st = dev.launch(one_warp_kernel(emissions), grid=1, block=32,
                        smem_bytes=layout.smem_bytes, args=(layout, out))
        assert st.extra.get("overflow_flushes", 0) == 0
        assert st.extra.get("flushes", 0) == 1  # the final flush only
        got = sorted(out.as_record_set().download())
        assert got == sorted([(first_k, first_v), (b"c" * pad, b"d" * 4)])

    def test_one_byte_over_flushes_without_overlap(self):
        """capacity + 1 must trigger exactly one overflow flush, and
        both records must survive it intact (no stack overlap)."""
        dev, layout, out = setup()
        first_k, first_v = b"a" * 16, b"b" * 8
        used = record_cost(first_k, first_v)
        pad = layout.output_bytes - used - (WARP_RESULT_HEADER
                                            + OUT_DIR_PER_RECORD + 4) + 1
        emissions = [([first_k], [first_v]), ([b"c" * pad], [b"d" * 4])]
        st = dev.launch(one_warp_kernel(emissions), grid=1, block=32,
                        smem_bytes=layout.smem_bytes, args=(layout, out))
        assert st.extra.get("overflow_flushes", 0) == 1
        assert st.extra.get("flushes", 0) == 2  # overflow + final
        got = sorted(out.as_record_set().download())
        assert got == sorted([(first_k, first_v), (b"c" * pad, b"d" * 4)])

    def test_single_emission_fills_whole_area(self):
        """One warp result equal to the entire output area is legal
        (need == output_bytes is not an overflow)."""
        dev, layout, out = setup()
        klen = (layout.output_bytes - WARP_RESULT_HEADER
                - OUT_DIR_PER_RECORD - 4)
        emissions = [([b"k" * klen], [b"v" * 4])]
        st = dev.launch(one_warp_kernel(emissions), grid=1, block=32,
                        smem_bytes=layout.smem_bytes, args=(layout, out))
        assert st.extra.get("overflow_flushes", 0) == 0
        assert out.as_record_set().count == 1
