"""Tests for the wait-signal primitive (paper Section III-C)."""

import pytest

from repro.errors import FrameworkError
from repro.framework.sync import WaitSignal, make_pair, poll_interval
from repro.gpu import Device, DeviceConfig


def make_device():
    return Device(DeviceConfig.small(1))


class TestConstruction:
    def test_groups_must_be_disjoint(self):
        with pytest.raises(FrameworkError):
            WaitSignal(base_off=0, n_warps=4, signal_group=(0, 1),
                       wait_group=(1, 2))

    def test_groups_must_be_nonempty(self):
        with pytest.raises(FrameworkError):
            WaitSignal(base_off=0, n_warps=4, signal_group=(), wait_group=(1,))

    def test_make_pair_disjoint_flag_storage(self):
        ovf, handled = make_pair(
            base_off=0, n_warps=4, compute_warps=(0, 1), helper_warps=(2, 3)
        )
        assert handled.base_off >= ovf.base_off + 8 * 4

    def test_wrong_group_membership_raises(self):
        from repro.errors import KernelFault

        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,), wait_group=(1,))

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ws.wait(ctx)  # warp 0 is a signaller: invalid
            else:
                yield from ws.wait(ctx)

        with pytest.raises(KernelFault, match="not in the wait group"):
            dev.launch(k, grid=1, block=64, smem_bytes=256)


class TestProtocol:
    def test_one_to_one_roundtrip(self):
        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,), wait_group=(1,))
        order = []

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ctx.compute(3000)
                order.append("work-done")
                yield from ws.signal(ctx)
            else:
                yield from ws.wait(ctx)
                order.append("waiter-woke")

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert order == ["work-done", "waiter-woke"]

    def test_many_to_many(self):
        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=8, signal_group=(0, 1, 2, 3),
                        wait_group=(4, 5, 6, 7))
        woke = []

        def k(ctx):
            if ctx.warp_id in ws.signal_group:
                yield from ctx.compute(100 * (ctx.warp_id + 1))
                yield from ws.signal(ctx)
            else:
                yield from ws.wait(ctx)
                woke.append(ctx.warp_id)

        dev.launch(k, grid=1, block=256, smem_bytes=256)
        assert sorted(woke) == [4, 5, 6, 7]

    def test_reuse_via_alternating_pair(self):
        """Reuse is safe when two conditions alternate, which is how
        the workflow uses the primitive (overflow -> handled -> ...,
        Figure 3).  Back-to-back reuse of a *single* condition would
        race (the signaller could re-raise before the waiter observed
        the clear), so the framework always pairs conditions."""
        dev = make_device()
        ovf, handled = make_pair(
            base_off=0, n_warps=2, compute_warps=(0,), helper_warps=(1,)
        )
        rounds = []

        def k(ctx):
            for i in range(5):
                if ctx.warp_id == 0:
                    yield from ctx.compute(500)
                    yield from ovf.signal(ctx)      # raise overflow
                    yield from handled.wait(ctx)    # wait for handling
                else:
                    yield from ovf.wait(ctx)        # see the overflow
                    rounds.append(i)
                    yield from handled.signal(ctx)  # report handled

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert rounds == [0, 1, 2, 3, 4]

    def test_single_condition_back_to_back_reuse(self):
        """Back-to-back reuse of ONE condition across loop rounds.
        The signaller's re-arm guard (wait for the previous round's
        seen flags to clear before raising) makes this safe; a legacy
        guard-less signal() loses a round — the re-raised flag is
        acknowledged by the stale seen flag while the waiter is still
        unwinding, and the waiter then deadlocks."""
        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,),
                        wait_group=(1,))
        rounds = []

        def k(ctx):
            for i in range(4):
                if ctx.warp_id == 0:
                    yield from ctx.compute(300)
                    yield from ws.signal(ctx)
                else:
                    yield from ws.wait(ctx)
                    rounds.append(i)

        dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert rounds == [0, 1, 2, 3]

    def test_signal_blocks_until_seen(self):
        """The signaller cannot leave before the (late) waiter raises
        its seen flag — it must poll across the waiter's delay."""
        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,), wait_group=(1,))
        seen_state = {}

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ws.signal(ctx)
                # By protocol, the waiter's seen flag was observed set
                # at some point; the last waiter has already cleared it
                # only after watching our signal flag go down.
                seen_state["signal_flag"] = ctx.smem.read_u32(ws._sig_off(0))
            else:
                yield from ctx.compute(50000)  # waiter arrives very late
                yield from ws.wait(ctx)

        st = dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert seen_state["signal_flag"] == 0
        # The signaller had to poll across the ~50000-cycle delay.
        assert st.polls >= 5

    def test_uncontended_wait_yields_no_poll(self):
        """Uncontended fast path: a waiter that arrives after the
        signal flags are already up acknowledges immediately — its
        wait() yields exactly one shared write (the seen-flag stouch)
        and NO Poll op, i.e. zero extra simulated events.  A non-last
        waiter is used so the cleanup branch (which legitimately polls
        for the signaller's flag clear) stays out of the picture."""
        from repro.gpu.instructions import Poll, SharedWrite

        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=4, signal_group=(0,),
                        wait_group=(1, 2))
        ops = []

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ws.signal(ctx)
            elif ctx.warp_id == 1:
                # Arrive long after the signal flag went up, but
                # before waiter 2 (so this is not the last waiter).
                yield from ctx.compute(30000)
                gen = ws.wait(ctx)
                res = None
                while True:
                    try:
                        op = gen.send(res)
                    except StopIteration:
                        break
                    ops.append(op)
                    res = yield op
            elif ctx.warp_id == 2:
                yield from ctx.compute(60000)
                yield from ws.wait(ctx)
            else:
                yield from ctx.compute(1)

        dev.launch(k, grid=1, block=128, smem_bytes=256)
        assert not any(isinstance(op, Poll) for op in ops)
        assert [type(op) for op in ops] == [SharedWrite]

    def test_fence_charged(self):
        dev = make_device()
        ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,), wait_group=(1,))

        def k(ctx):
            if ctx.warp_id == 0:
                yield from ws.signal(ctx)
            else:
                yield from ws.wait(ctx)

        st = dev.launch(k, grid=1, block=64, smem_bytes=256)
        assert st.fences >= 1
        assert st.polls >= 2


class TestYieldDiscipline:
    def test_poll_interval_values(self):
        dev = make_device()
        holder = {}

        def k(ctx):
            holder["spin"] = poll_interval(ctx, False)
            holder["yield"] = poll_interval(ctx, True)
            yield from ctx.compute(1)

        dev.launch(k, grid=1, block=32)
        assert holder["yield"] > 10 * holder["spin"]

    def test_spin_consumes_more_issue_slots(self):
        """The Figure 8 mechanism: a spinning waiter probes far more
        often than a yielding one over the same wait."""

        def run(yield_sync):
            dev = make_device()
            ws = WaitSignal(base_off=0, n_warps=2, signal_group=(0,),
                            wait_group=(1,), yield_sync=yield_sync)

            def k(ctx):
                if ctx.warp_id == 0:
                    yield from ctx.compute(20000)
                    yield from ws.signal(ctx)
                else:
                    yield from ws.wait(ctx)

            return dev.launch(k, grid=1, block=64, smem_bytes=256)

        spin = run(False)
        yld = run(True)
        assert spin.polls > 5 * yld.polls
