"""Tests for memory-usage modes and strategy fallbacks."""

import pytest

from repro.errors import FrameworkError
from repro.framework import MemoryMode, ReduceStrategy, effective_reduce_mode
from repro.framework.modes import ALL_MODES


class TestModeProperties:
    def test_staging_flags(self):
        assert MemoryMode.SIO.stages_input and MemoryMode.SIO.stages_output
        assert MemoryMode.SI.stages_input and not MemoryMode.SI.stages_output
        assert MemoryMode.SO.stages_output and not MemoryMode.SO.stages_input
        assert not MemoryMode.G.stages_input and not MemoryMode.G.stages_output
        assert not MemoryMode.GT.stages_input

    def test_texture_only_gt(self):
        assert MemoryMode.GT.uses_texture
        assert not any(
            m.uses_texture for m in ALL_MODES if m is not MemoryMode.GT
        )

    def test_wait_signal_only_with_staged_output(self):
        """Section IV-C: the primitive is only used in SIO and SO."""
        needs = {m for m in ALL_MODES if m.needs_wait_signal}
        assert needs == {MemoryMode.SO, MemoryMode.SIO}

    def test_all_modes_order_matches_paper(self):
        assert [m.value for m in ALL_MODES] == ["G", "GT", "SI", "SO", "SIO"]


class TestEffectiveReduceMode:
    def test_tr_cannot_stage_input(self):
        """SI -> G and SIO -> SO (Figure 6's footnote)."""
        assert effective_reduce_mode(MemoryMode.SI, ReduceStrategy.TR) is MemoryMode.G
        assert effective_reduce_mode(MemoryMode.SIO, ReduceStrategy.TR) is MemoryMode.SO

    def test_tr_passthrough(self):
        for m in (MemoryMode.G, MemoryMode.GT, MemoryMode.SO):
            assert effective_reduce_mode(m, ReduceStrategy.TR) is m

    def test_br_rejects_texture(self):
        """BR updates values in place; texture caches are incoherent."""
        with pytest.raises(FrameworkError):
            effective_reduce_mode(MemoryMode.GT, ReduceStrategy.BR)

    def test_br_passthrough(self):
        for m in (MemoryMode.G, MemoryMode.SI, MemoryMode.SO, MemoryMode.SIO):
            assert effective_reduce_mode(m, ReduceStrategy.BR) is m
