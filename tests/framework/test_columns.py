"""Unit tests for the columnar record layer (repro.framework.columns).

The whole module exists to be *ordering-exact*: stable sorts keep
emission order among equal keys, group keys come out in ascending
byte order, and every conversion round-trips byte for byte.  These
tests pin those invariants directly, including the classic hazards —
trailing-NUL keys (zero-padding must not merge distinct keys) and
ragged keys (lexicographic byte order, not length-first).
"""

import numpy as np
import pytest

from repro.errors import FrameworkError
from repro.framework.columns import (
    Column,
    ColumnBatch,
    GroupedColumns,
    sort_and_group,
)
from repro.framework.records import KeyValueSet


def _grouped_ref(pairs):
    """The MemoryStore contract: dict-of-lists, read back key-sorted."""
    groups = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    return sorted(groups.items())


class TestColumn:
    def test_round_trip_ragged(self):
        items = [b"", b"a", b"longer-item", b"\x00\x00", b"mid"]
        col = Column.from_list(items)
        assert col.tolist() == items
        assert list(col) == items
        assert col.at(2) == b"longer-item"
        assert col.fixed_width is None

    def test_fixed_width_and_views(self):
        arr = np.arange(12, dtype="<u4").reshape(3, 4)
        col = Column.from_array(arr)
        assert col.fixed_width == 16
        assert col.matrix().shape == (3, 16)
        np.testing.assert_array_equal(col.fixed_array("<u4"), arr)

    def test_fixed_array_rejects_misaligned(self):
        col = Column.from_list([b"abc", b"def"])
        with pytest.raises(FrameworkError):
            col.fixed_array("<u4")

    def test_take_fixed_and_ragged(self):
        order = np.array([2, 0, 1])
        fixed = Column.from_list([b"aa", b"bb", b"cc"])
        assert fixed.take(order).tolist() == [b"cc", b"aa", b"bb"]
        ragged = Column.from_list([b"a", b"bbb", b""])
        assert ragged.take(order).tolist() == [b"", b"a", b"bbb"]

    def test_concat_and_repeated(self):
        a = Column.from_list([b"x", b"yy"])
        b = Column.repeated(b"kk", 3)
        cat = Column.concat([a, b])
        assert cat.tolist() == [b"x", b"yy", b"kk", b"kk", b"kk"]

    def test_empty(self):
        col = Column.from_list([])
        assert len(col) == 0
        assert col.tolist() == []
        assert col.fixed_width is None


class TestColumnBatch:
    def test_kvs_round_trip(self):
        kvs = KeyValueSet([(b"k1", b"v1"), (b"", b""), (b"k2", b"vv2")])
        batch = ColumnBatch.from_kvs(kvs)
        assert batch.to_kvs() == kvs
        assert list(batch.iter_pairs()) == list(kvs)

    def test_length_mismatch_rejected(self):
        with pytest.raises(FrameworkError):
            ColumnBatch(Column.from_list([b"a"]), Column.from_list([]))


class TestSortAndGroup:
    def _check(self, keys):
        """sort_and_group must reproduce the dict-shuffle contract."""
        col = Column.from_list(keys)
        vals = [b"v%d" % i for i in range(len(keys))]
        grouped = GroupedColumns.from_batch(
            ColumnBatch(col, Column.from_list(vals))
        )
        assert list(grouped) == _grouped_ref(zip(keys, vals))
        return grouped

    def test_narrow_fixed_keys_vectorized(self):
        keys = [b"ba", b"ab", b"ba", b"aa", b"ab"]
        g = self._check(keys)
        assert g.vectorized

    def test_wide_fixed_keys_vectorized(self):
        # 12-byte keys exercise the multi-limb lexsort path.
        keys = [b"x" * 11 + bytes([c]) for c in (3, 1, 2, 1, 3, 0)]
        g = self._check(keys)
        assert g.vectorized

    def test_trailing_nul_keys_stay_distinct(self):
        # The zero-padding hazard: b"a\x00" and b"a\x00\x00" (ragged)
        # must never merge, and fixed-width keys ending in NUL must
        # sort before their non-NUL siblings.
        g = self._check([b"a\x00", b"a\x01", b"a\x00", b"b\x00"])
        assert g.vectorized
        self._check([b"a", b"a\x00", b"a\x00\x00", b"a"])  # ragged

    def test_ragged_keys_fallback_is_exact(self):
        keys = [b"bb", b"a", b"", b"bb", b"aaa", b"a"]
        g = self._check(keys)
        assert not g.vectorized

    def test_empty_key_column_single_group(self):
        g = self._check([b"", b"", b""])
        assert len(g) == 1

    def test_empty_input(self):
        order, starts, vectorized = sort_and_group(Column.from_list([]))
        assert len(order) == 0
        assert list(starts) == [0]
        assert vectorized

    def test_stability_preserves_emission_order(self):
        keys = [b"k"] * 64
        vals = [bytes([i]) for i in range(64)]
        g = GroupedColumns.from_batch(ColumnBatch.from_lists(keys, vals))
        (_, got), = list(g)
        assert got == vals


class TestGroupedColumns:
    def test_shape_accessors(self):
        g = GroupedColumns.from_batch(ColumnBatch.from_lists(
            [b"b", b"a", b"b", b"a", b"c"], [b"1", b"2", b"3", b"4", b"5"]
        ))
        assert len(g) == 3
        assert g.n_values == 5
        assert list(g.group_sizes) == [2, 2, 1]
        assert g.keys.tolist() == [b"a", b"b", b"c"]
