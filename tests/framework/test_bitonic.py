"""Tests for the device-executed bitonic sorter."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework.bitonic import BitonicResult, bitonic_sort_device, fnv1a
from repro.gpu import Device, DeviceConfig


def sort_keys(keys, mps=2, tpb=64):
    dev = Device(DeviceConfig.small(mps))
    return bitonic_sort_device(dev, keys, threads_per_block=tpb)


def reference_order(keys):
    return sorted(range(len(keys)), key=lambda i: (fnv1a(keys[i]), i))


class TestFunctional:
    def test_sorts_by_hash(self):
        keys = [f"key{i}".encode() for i in range(50)]
        res = sort_keys(keys)
        assert list(res.order) == reference_order(keys)

    def test_duplicates_stay_stable(self):
        keys = [b"same"] * 9 + [b"other"] * 7
        res = sort_keys(keys)
        hashes = [fnv1a(keys[i]) for i in res.order]
        assert hashes == sorted(hashes)
        # Equal hashes keep index order (the composite's low bits).
        same_positions = [i for i in res.order if keys[i] == b"same"]
        assert same_positions == sorted(same_positions)

    def test_single_and_empty(self):
        assert list(sort_keys([b"x"]).order) == [0]
        assert len(sort_keys([]).order) == 0

    def test_non_power_of_two(self):
        keys = [bytes([i * 7 % 251]) for i in range(37)]
        res = sort_keys(keys)
        assert sorted(res.order) == list(range(37))
        assert list(res.order) == reference_order(keys)

    @given(st.lists(st.binary(min_size=0, max_size=12), min_size=1,
                    max_size=80))
    @settings(max_examples=15, deadline=None)
    def test_is_a_sorting_permutation(self, keys):
        res = sort_keys(keys)
        assert sorted(res.order) == list(range(len(keys)))
        hashes = [fnv1a(keys[i]) for i in res.order]
        assert hashes == sorted(hashes)


class TestTiming:
    def test_stage_count_is_bitonic(self):
        """log2(n) * (log2(n)+1) / 2 stages for padded n."""
        res = sort_keys([bytes([i]) for i in range(60)])  # pads to 64
        lg = int(math.log2(64))
        assert res.stages == lg * (lg + 1) // 2

    def test_cycles_grow_superlinearly(self):
        small = sort_keys([bytes([i % 251]) for i in range(32)])
        big = sort_keys([b"%03d" % (i % 999) for i in range(256)])
        assert big.stats.cycles > 2 * small.stats.cycles

    def test_analytic_model_is_same_order_of_magnitude(self):
        """The analytic shuffle cost and the simulated sorter must
        agree within a small factor at equal n (sanity for Fig 6)."""
        from repro.framework.shuffle import shuffle_cycles

        n = 256
        keys = [b"%04d" % (i * 37 % 1000) for i in range(n)]
        res = sort_keys(keys, mps=30, tpb=128)
        analytic = shuffle_cycles(
            n_records=n, avg_record_bytes=4, config=DeviceConfig.gtx280()
        )
        ratio = res.stats.cycles / analytic
        assert 0.1 < ratio < 10.0, (res.stats.cycles, analytic)

    def test_memory_traffic_charged(self):
        res = sort_keys([bytes([i]) for i in range(64)])
        assert res.stats.global_transactions > 0
        assert res.stats.global_reads > 0


class TestShuffleIntegration:
    def test_bitonic_shuffle_in_full_job(self):
        """run_job(shuffle_method='bitonic') produces identical output
        with an event-driven (measured) shuffle cost."""
        import struct

        from repro.cpu_ref import normalised
        from repro.framework import MemoryMode, ReduceStrategy, run_job
        from repro.framework.api import MapReduceSpec

        def m(key, value, emit, const):
            for w in key.to_bytes().split(b" "):
                if w:
                    emit(w, struct.pack("<I", 1))

        def r(key, values, emit, const):
            emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))

        spec = MapReduceSpec(name="bshuf", map_record=m, reduce_record=r)
        from repro.framework import KeyValueSet

        inp = KeyValueSet([(b"aa bb cc aa", struct.pack("<I", i))
                           for i in range(40)])
        cfg = DeviceConfig.small(2)
        # backend pinned: the shuffle-cycle comparison below is the
        # simulator's contract (functional backends report zero cycles).
        a = run_job(spec, inp, mode=MemoryMode.G, strategy=ReduceStrategy.TR,
                    config=cfg, shuffle_method="sort", backend="sim")
        b = run_job(spec, inp, mode=MemoryMode.G, strategy=ReduceStrategy.TR,
                    config=cfg, shuffle_method="bitonic", backend="sim")
        assert normalised(a.output) == normalised(b.output)
        assert b.timings.shuffle > 0
        assert b.timings.shuffle != a.timings.shuffle

    def test_bitonic_needs_device(self):
        from repro.framework import DeviceRecordSet, KeyValueSet
        from repro.framework.shuffle import shuffle as _shuffle
        from repro.gpu.memory import GlobalMemory

        g = GlobalMemory()
        inter = DeviceRecordSet.upload(g, KeyValueSet([(b"k", b"v")]))
        with pytest.raises(ValueError, match="needs the device"):
            _shuffle(g, inter, DeviceConfig.gtx280(), method="bitonic")
