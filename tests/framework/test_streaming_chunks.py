"""Chunk-boundary tests for the streamed driver (paper Section III-A).

A batch count that does not divide the input must neither drop nor
duplicate records: the batches must partition the input exactly, and
the streamed job's output must equal the single-shot job's for every
batching.  (The ragged last chunk is the classic off-by-one site.)
"""

import pytest

from repro.cpu_ref import reference_job
from repro.cpu_ref.reference import normalised
from repro.framework import MemoryMode, ReduceStrategy
from repro.framework.api import MapReduceSpec
from repro.framework.records import KeyValueSet
from repro.framework.streaming import run_streamed_job, split_batches
from repro.gpu import DeviceConfig

CFG = DeviceConfig.small(2)


def _u32(n):
    return (n & 0xFFFFFFFF).to_bytes(4, "little")


def _spec():
    def ident(key, value, emit, const):
        emit(key.to_bytes(), value.to_bytes())

    def count(key, values, emit, const):
        emit(key.to_bytes(), _u32(len(values)))

    return MapReduceSpec(name="chunks", map_record=ident,
                         reduce_record=count)


def _input(n):
    inp = KeyValueSet()
    for i in range(n):
        inp.append(_u32(i % 4), _u32(i))
    return inp


class TestSplitBatches:
    @pytest.mark.parametrize("n,n_batches", [
        (10, 3), (10, 4), (10, 7), (11, 2), (1, 3), (13, 13), (5, 20),
    ])
    def test_partition_is_exact(self, n, n_batches):
        inp = _input(n)
        batches = split_batches(inp, n_batches)
        flat = [rec for b in batches for rec in b]
        assert flat == list(inp)  # order kept, nothing dropped/duplicated
        assert all(len(b) > 0 for b in batches)

    def test_empty_input_yields_no_batches(self):
        assert split_batches(KeyValueSet(), 4) == []


class TestStreamedEquivalence:
    @pytest.mark.parametrize("n,n_batches", [
        (10, 3),   # ragged tail: 4+4+2
        (11, 4),   # ragged tail: 3+3+3+2
        (7, 20),   # more batches than records
        (16, 1),   # degenerate single batch
    ])
    def test_non_dividing_chunks_conserve_records(self, n, n_batches):
        spec, inp = _spec(), _input(n)
        want = normalised(reference_job(spec, inp, ReduceStrategy.TR))
        # backend pinned: the check_report comes from the simulator's
        # sanitizer, which functional backends don't run.
        res = run_streamed_job(spec, inp, n_batches=n_batches,
                               mode=MemoryMode.SIO,
                               strategy=ReduceStrategy.TR, config=CFG,
                               check=True, backend="sim")
        assert normalised(res.job.output) == want
        assert sum(b.records for b in res.batches) == n
        assert res.job.check_report is not None and res.job.check_report.ok

    def test_map_only_streaming_conserves_records(self):
        spec, inp = _spec(), _input(10)
        res = run_streamed_job(spec, inp, n_batches=3, mode=MemoryMode.SIO,
                               strategy=None, config=CFG, check=True,
                               backend="sim")
        assert normalised(res.job.output) == normalised(
            reference_job(spec, inp, None))
        assert res.job.check_report.ok

    def test_empty_input_streams_cleanly(self):
        spec = _spec()
        res = run_streamed_job(spec, KeyValueSet(), n_batches=4,
                               mode=MemoryMode.SIO,
                               strategy=ReduceStrategy.TR, config=CFG,
                               check=True)
        assert len(res.job.output) == 0
        assert res.batches == []
