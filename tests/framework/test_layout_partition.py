"""Tests for shared-memory layout planning and warp-role partitioning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError, FrameworkError
from repro.framework import MemoryMode, partition_warps, plan_layout
from repro.framework.layout import (
    CONTROL_BYTES,
    FLAG_BYTES_PER_WARP,
    STAGED_DIR_PER_RECORD,
)


class TestPlanLayout:
    def test_regions_are_disjoint_and_ordered(self):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=128, mode=MemoryMode.SIO
        )
        assert lay.flags_off == 0
        assert lay.working_off >= FLAG_BYTES_PER_WARP * 4 + CONTROL_BYTES
        assert lay.input_off == lay.working_off + 16 * 128
        assert lay.output_off == lay.input_off + lay.input_bytes
        assert lay.output_off + lay.output_bytes <= 16 * 1024

    def test_io_ratio_splits_staging_space(self):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=64,
            mode=MemoryMode.SIO, io_ratio=0.25,
        )
        assert lay.input_bytes < lay.output_bytes
        total = lay.input_bytes + lay.output_bytes
        assert lay.input_bytes == pytest.approx(total * 0.25, abs=2)

    def test_si_gets_all_staging_space(self):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=64, mode=MemoryMode.SI
        )
        assert lay.output_bytes == 0
        assert lay.input_bytes > 10 * 1024

    def test_so_gets_all_staging_space(self):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=64, mode=MemoryMode.SO
        )
        assert lay.input_bytes == 0
        assert lay.output_bytes > 10 * 1024

    def test_g_mode_needs_only_control_space(self):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=64, mode=MemoryMode.G
        )
        assert lay.input_bytes == 0 and lay.output_bytes == 0
        assert lay.smem_bytes < 2048

    def test_big_blocks_shrink_staging(self):
        small = plan_layout(smem_budget=16 * 1024, threads_per_block=64,
                            mode=MemoryMode.SIO)
        big = plan_layout(smem_budget=16 * 1024, threads_per_block=512,
                          mode=MemoryMode.SIO)
        assert big.input_bytes < small.input_bytes

    def test_rejects_bad_ratio(self):
        with pytest.raises(ConfigError):
            plan_layout(smem_budget=16 * 1024, threads_per_block=64,
                        mode=MemoryMode.SIO, io_ratio=0.99)

    def test_rejects_non_warp_multiple(self):
        with pytest.raises(ConfigError):
            plan_layout(smem_budget=16 * 1024, threads_per_block=100,
                        mode=MemoryMode.G)

    def test_rejects_too_small_budget(self):
        with pytest.raises(ConfigError):
            plan_layout(smem_budget=3 * 1024, threads_per_block=512,
                        mode=MemoryMode.SIO, working_bytes_per_thread=16)

    @given(
        st.sampled_from([64, 128, 256, 512]),
        st.sampled_from(list(MemoryMode)),
        st.floats(0.1, 0.9),
    )
    def test_never_exceeds_budget(self, tpb, mode, ratio):
        lay = plan_layout(
            smem_budget=16 * 1024, threads_per_block=tpb, mode=mode,
            io_ratio=ratio, working_bytes_per_thread=8,
        )
        assert lay.smem_bytes <= 16 * 1024


class TestRecordsFit:
    def lay(self):
        return plan_layout(smem_budget=16 * 1024, threads_per_block=64,
                           mode=MemoryMode.SI)

    def test_packs_until_full(self):
        lay = self.lay()
        per = 100 + STAGED_DIR_PER_RECORD
        n = lay.records_fit([50] * 1000, [50] * 1000, 0)
        assert n == lay.input_bytes // per

    def test_respects_start(self):
        lay = self.lay()
        sizes = [lay.input_bytes] * 2  # each record alone too big with dir
        assert lay.records_fit(sizes, [0, 0], 0) == 0

    def test_empty_tail(self):
        lay = self.lay()
        assert lay.records_fit([10], [10], 1) == 0


class TestPartition:
    def test_g_mode_all_compute(self):
        p = partition_warps(n_warps=4, concurrency=1000, mode=MemoryMode.G)
        assert p.compute_warps == (0, 1, 2, 3)
        assert p.helper_warps == ()

    def test_staged_output_reserves_helper(self):
        """Even at full concurrency, SO/SIO keep >= 1 helper warp (the
        MM 64-thread cost the paper mentions)."""
        for mode in (MemoryMode.SO, MemoryMode.SIO):
            p = partition_warps(n_warps=2, concurrency=1000, mode=mode)
            assert len(p.compute_warps) == 1
            assert len(p.helper_warps) == 1

    def test_concurrency_rounds_up_to_warps(self):
        p = partition_warps(n_warps=8, concurrency=33, mode=MemoryMode.SIO)
        assert len(p.compute_warps) == 2  # ceil(33/32)
        assert p.compute_threads == 64

    def test_low_concurrency_single_warp(self):
        p = partition_warps(n_warps=8, concurrency=1, mode=MemoryMode.SI)
        assert p.compute_warps == (0,)

    def test_so_needs_two_warps(self):
        with pytest.raises(FrameworkError):
            partition_warps(n_warps=1, concurrency=10, mode=MemoryMode.SO)

    def test_role_of(self):
        p = partition_warps(n_warps=4, concurrency=64, mode=MemoryMode.SIO)
        assert p.role_of(0) == "compute"
        assert p.role_of(3) == "helper"

    @given(st.integers(2, 16), st.integers(0, 5000))
    def test_partition_covers_all_warps(self, n_warps, conc):
        p = partition_warps(n_warps=n_warps, concurrency=conc,
                            mode=MemoryMode.SIO)
        assert sorted(p.compute_warps + p.helper_warps) == list(range(n_warps))
        assert len(p.helper_warps) >= 1
