"""Columnar emission through the store seam (emit_columns).

The contract every store must honour: ``emit_columns(batch)`` leaves
the store — grouped output AND all accounting — exactly as if the
same records had been emitted one at a time.  For the spill store
that includes the budget rule's spill points, run files and peak
bytes; for the memory store it includes the graceful mixed-mode
degradation (scalar + columnar emissions into one store).
"""

import random

import pytest

from repro.framework.columns import ColumnBatch
from repro.store import MemoryStore, SpillStore
from repro.store.base import record_cost


def _pairs(n, keys=7, seed=0, vw=(0, 12)):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        k = b"key-%d" % rng.randrange(keys)
        v = bytes(rng.randrange(256) for _ in range(rng.randrange(*vw)))
        out.append((k, v))
    return out


def _stats_tuple(st):
    return (st.emitted_records, st.emitted_bytes, st.peak_bytes,
            st.spill_runs, st.spilled_bytes)


class TestMemoryStoreColumns:
    def test_columnar_emit_matches_scalar(self):
        pairs = _pairs(200, seed=1)
        scalar = MemoryStore()
        for k, v in pairs:
            scalar.emit(k, v)
        col = MemoryStore()
        col.emit_columns(ColumnBatch.from_pairs(pairs))
        assert list(col.iter_groups()) == list(scalar.iter_groups())
        assert _stats_tuple(col.stats) == _stats_tuple(scalar.stats)

    def test_column_groups_vectorized_readback(self):
        pairs = _pairs(150, seed=2)
        store = MemoryStore()
        store.emit_columns(ColumnBatch.from_pairs(pairs))
        grouped = store.column_groups()
        assert grouped is not None
        ref = MemoryStore()
        for k, v in pairs:
            ref.emit(k, v)
        assert list(grouped) == list(ref.iter_groups())

    def test_mixed_mode_degrades_to_dict(self):
        # Scalar emits first: columnar chunks must unroll into the
        # dict and column_groups() must decline.
        pairs = _pairs(60, seed=3)
        store = MemoryStore()
        store.emit(*pairs[0])
        store.emit_columns(ColumnBatch.from_pairs(pairs[1:30]))
        for k, v in pairs[30:]:
            store.emit(k, v)
        assert store.column_groups() is None
        ref = MemoryStore()
        for k, v in pairs:
            ref.emit(k, v)
        assert list(store.iter_groups()) == list(ref.iter_groups())

    def test_columns_then_scalar_drains(self):
        pairs = _pairs(40, seed=4)
        store = MemoryStore()
        store.emit_columns(ColumnBatch.from_pairs(pairs[:20]))
        for k, v in pairs[20:]:
            store.emit(k, v)
        ref = MemoryStore()
        for k, v in pairs:
            ref.emit(k, v)
        assert list(store.iter_groups()) == list(ref.iter_groups())
        assert store.group_count == ref.group_count

    def test_empty_batch_is_noop(self):
        store = MemoryStore()
        store.emit_columns(ColumnBatch.from_lists([], []))
        assert store.stats.emitted_records == 0
        assert store.column_groups() is not None
        assert len(store.column_groups()) == 0


class TestSpillStoreColumns:
    @pytest.mark.parametrize("budget", [1, 64, 256, 4096])
    def test_columnar_emit_byte_identical_to_scalar(self, budget, tmp_path):
        pairs = _pairs(300, seed=budget)
        scalar = SpillStore(budget, spill_dir=str(tmp_path / "a"),
                            own_dir=False)
        (tmp_path / "a").mkdir()
        for k, v in pairs:
            scalar.emit(k, v)
        col = SpillStore(budget, spill_dir=str(tmp_path / "b"),
                         own_dir=False)
        (tmp_path / "b").mkdir()
        col.emit_columns(ColumnBatch.from_pairs(pairs))
        # Identical spill points -> identical run counts, and the full
        # stats tuple (records, bytes, peak, runs, spilled) matches.
        assert _stats_tuple(col.stats) == _stats_tuple(scalar.stats)
        assert list(col.iter_groups()) == list(scalar.iter_groups())

    def test_chunked_columnar_equals_one_batch(self, tmp_path):
        pairs = _pairs(120, seed=9)
        one = SpillStore(128)
        one.emit_columns(ColumnBatch.from_pairs(pairs))
        chunked = SpillStore(128)
        for lo in range(0, 120, 17):
            chunked.emit_columns(
                ColumnBatch.from_pairs(pairs[lo:lo + 17])
            )
        assert _stats_tuple(chunked.stats) == _stats_tuple(one.stats)
        assert list(chunked.iter_groups()) == list(one.iter_groups())

    def test_record_larger_than_budget(self):
        # The scalar rule: an empty buffer always accepts the next
        # record, even one bigger than the whole budget.
        big = [(b"k", bytes(100)), (b"k", bytes(100)), (b"j", b"x")]
        scalar = SpillStore(8)
        for k, v in big:
            scalar.emit(k, v)
        col = SpillStore(8)
        col.emit_columns(ColumnBatch.from_pairs(big))
        assert _stats_tuple(col.stats) == _stats_tuple(scalar.stats)
        assert list(col.iter_groups()) == list(scalar.iter_groups())

    def test_random_cases_full_sweep(self):
        rng = random.Random(42)
        for case in range(50):
            n = rng.randrange(0, 80)
            budget = rng.choice([1, 16, 64, 300])
            pairs = _pairs(n, keys=rng.randrange(1, 9), seed=case)
            scalar = SpillStore(budget)
            for k, v in pairs:
                scalar.emit(k, v)
            col = SpillStore(budget)
            col.emit_columns(ColumnBatch.from_pairs(pairs))
            assert _stats_tuple(col.stats) == _stats_tuple(scalar.stats), case
            assert list(col.iter_groups()) == list(scalar.iter_groups()), case
