"""Acceptance tests for the spillable shuffle on whole jobs.

The headline claim: a spill budget below 10% of the measured working
set still produces output *byte-identical* to the unbounded memory
store, on both functional backends, while the store's own accounting
shows the tracked peak stayed under the budget.  Plus the spill
telemetry plumbing — KernelStats extras, the run ledger and the
tracer spans all carry the accounting.
"""

import glob
import os

import pytest

from repro.backend import ParallelBackend
from repro.framework import ReduceStrategy, run_job
from repro.framework.api import MapReduceSpec
from repro.framework.records import KeyValueSet
from repro.obs.ledger import ledger_path, read_ledger
from repro.obs.tracer import Tracer
from repro.workloads import KMeans, WordCount

WORKLOADS = {"wordcount": WordCount, "kmeans": KMeans}


def _backend(name):
    if name == "parallel":
        return ParallelBackend(workers=2, min_records=0)
    return name


def _run(workload_cls, backend, **kwargs):
    w = workload_cls()
    inp = w.generate("medium", seed=3)
    spec = w.spec_for_size("medium", seed=3)
    return run_job(spec, inp, strategy=ReduceStrategy.TR,
                   backend=_backend(backend), **kwargs)


@pytest.mark.parametrize("backend", ["fast", "parallel"])
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_tiny_budget_spill_is_byte_identical(workload, backend):
    cls = WORKLOADS[workload]
    baseline = _run(cls, backend)  # unbounded memory store

    # Measure the working set: an effectively-infinite budget keeps
    # everything in the tracked buffer, so its peak *is* the set.
    probe = _run(cls, backend, store="spill", memory_budget=1 << 30)
    working_set = probe.reduce_stats.extra["store_peak_bytes"]
    assert working_set > 0
    if backend == "fast":
        # Everything fits: nothing spills.  (The parallel backend's
        # workers always flush their tail to one run file apiece —
        # only paths cross the process boundary — so its run count
        # never reaches zero; the peak still measures the set.)
        assert probe.reduce_stats.extra["spill_runs"] == 0
    assert probe.output == baseline.output

    # Under 10% of that, the job must spill — and still match byte
    # for byte, with the tracked peak bounded by the budget.
    budget = max(64, working_set // 10)
    spilled = _run(cls, backend, store="spill", memory_budget=budget)
    extra = spilled.reduce_stats.extra
    floor = 2 if backend == "parallel" else 0  # the mandatory flushes
    assert extra["spill_runs"] > floor
    assert extra["spilled_bytes"] > 0
    assert extra["store_peak_bytes"] <= budget
    assert spilled.output == baseline.output
    assert spilled.intermediate_count == baseline.intermediate_count


def test_streamed_spill_matches_memory():
    """The chunked driver routes batches into a spill sink store."""
    from repro.framework.streaming import run_streamed_job

    w = WordCount()
    inp = w.generate("small", seed=5)
    spec = w.spec_for_size("small", seed=5)
    kwargs = dict(strategy=ReduceStrategy.TR, backend="fast",
                  n_batches=6)
    plain = run_streamed_job(spec, inp, **kwargs)
    spilled = run_streamed_job(spec, inp, store="spill",
                               memory_budget=2048, **kwargs)
    assert spilled.job.output == plain.job.output
    assert spilled.job.reduce_stats.extra["spill_runs"] > 0


def test_ledger_records_spill_accounting(monkeypatch):
    # Pin the defaults: the suite also runs under REPRO_STORE=spill,
    # and the second half asserts what an *unconfigured* run records.
    monkeypatch.delenv("REPRO_STORE", raising=False)
    monkeypatch.delenv("REPRO_MEMORY_BUDGET", raising=False)
    result = _run(WordCount, "fast", store="spill", memory_budget=4096)
    assert result.reduce_stats.extra["spill_runs"] > 0
    records = read_ledger(ledger_path())
    assert records, "job should have appended a ledger record"
    rec = records[-1]
    assert rec["store"] == "spill"
    assert rec["spill_runs"] > 0
    assert rec["spilled_bytes"] > 0

    # A memory-store run reports the policy but no spill counters.
    _run(WordCount, "fast")
    rec = read_ledger(ledger_path())[-1]
    assert rec["store"] is None
    assert rec["spill_runs"] is None


@pytest.mark.parametrize("backend", ["fast", "parallel"])
def test_trace_spans_carry_spill_attrs(backend):
    tracer = Tracer(wall_clock=True)
    _run(WordCount, backend, store="spill", memory_budget=4096,
         tracer=tracer)
    spans = tracer.find("shuffle_exec")
    assert spans, "shuffle span missing"
    attrs = spans[0].attrs
    assert attrs["spill_runs"] > 0
    assert attrs["spilled_bytes"] > 0


# ----------------------------------------------------------------------
# Error paths must leave no run files behind
# ----------------------------------------------------------------------


def _map_identity(key, value, emit, const):
    emit(key.to_bytes(), value.to_bytes())


def _map_boom(key, value, emit, const):
    raise ValueError("boom")


def _reduce_boom(key, values, emit, const):
    raise ValueError("boom")


def _tiny_input(n=64):
    inp = KeyValueSet()
    for i in range(n):
        inp.append(b"k%d" % (i % 5), i.to_bytes(4, "little"))
    return inp


def _spill_dirs(root) -> list[str]:
    return glob.glob(os.path.join(str(root), "repro-spill-*"))


class TestErrorCleanup:
    def test_fast_reduce_error_leaves_no_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spec = MapReduceSpec(name="boom", map_record=_map_identity,
                             reduce_record=_reduce_boom)
        with pytest.raises(ValueError, match="boom"):
            run_job(spec, _tiny_input(), strategy=ReduceStrategy.TR,
                    backend="fast", store="spill", memory_budget=64)
        assert _spill_dirs(tmp_path) == []

    def test_parallel_worker_error_leaves_no_runs(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        spec = MapReduceSpec(name="boom", map_record=_map_boom,
                             reduce_record=_reduce_boom)
        with pytest.raises(Exception):
            run_job(spec, _tiny_input(), strategy=ReduceStrategy.TR,
                    backend=ParallelBackend(workers=2, min_records=0),
                    store="spill", memory_budget=64)
        assert _spill_dirs(tmp_path) == []
