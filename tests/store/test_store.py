"""Unit tests for the :mod:`repro.store` layer.

The contract under test: every store yields groups sorted by key bytes
with values in emission order, so Reduce output is byte-identical
regardless of policy — and :class:`~repro.store.spill.SpillStore` keeps
its *tracked* buffer bounded while doing so, cleaning up its run files
on every exit path (including mid-iteration abandonment and errors).
"""

import glob
import os

import pytest

from repro.errors import FrameworkError
from repro.store import (
    MemoryStore,
    SpillStore,
    open_store,
    parse_budget,
    resolve_budget,
    resolve_store_name,
)
from repro.store.base import record_cost
from repro.store.spill import merge_runs


def _u32(n: int) -> bytes:
    return n.to_bytes(4, "little")


def _fill(store, pairs):
    store.emit_many(pairs)
    store.finalize()
    return list(store.iter_groups())


def _mixed_pairs(n=300, keys=7):
    """Deterministic interleaving: several hot keys, values tagged
    with their global emission index so ordering bugs are visible."""
    return [(b"k%d" % (i % keys), _u32(i)) for i in range(n)]


# ----------------------------------------------------------------------
# Budget parsing and resolution
# ----------------------------------------------------------------------


class TestBudgetParsing:
    @pytest.mark.parametrize("text,want", [
        (None, None),
        ("123", 123),
        ("64k", 64 * 1024),
        ("2M", 2 * 2**20),
        ("1g", 2**30),
        (" 512K ", 512 * 1024),
        ("", None),
    ])
    def test_parse_budget(self, text, want):
        assert parse_budget(text) == want

    @pytest.mark.parametrize("text", ["abc", "12q", "0", "-3", "1.5m",
                                      "-1", "  -1 ", "0k"])
    def test_parse_budget_rejects(self, text):
        with pytest.raises(FrameworkError):
            parse_budget(text)

    @pytest.mark.parametrize("value", [0, -1, -64])
    def test_parse_budget_rejects_nonpositive_ints(self, value):
        # A literal 0/-1 used to pass straight through unvalidated.
        with pytest.raises(FrameworkError):
            parse_budget(value)

    def test_parse_budget_accepts_padded_suffix(self):
        assert parse_budget("  64k ") == 64 * 1024

    def test_resolve_budget_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1.5m")
        with pytest.raises(FrameworkError):
            resolve_budget(None)
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "-1")
        with pytest.raises(FrameworkError):
            resolve_budget(None)

    def test_resolve_store_name_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_store_name(None) == "memory"
        monkeypatch.setenv("REPRO_STORE", "spill")
        assert resolve_store_name(None) == "spill"
        assert resolve_store_name("memory") == "memory"

    def test_resolve_budget_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "4k")
        assert resolve_budget(None) == 4096
        assert resolve_budget(77) == 77

    def test_open_store_honours_env_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "2k")
        store = open_store("spill", None)
        try:
            assert isinstance(store, SpillStore)
            assert store.budget == 2048
        finally:
            store.close()

    def test_open_store_unknown_name(self):
        with pytest.raises(FrameworkError):
            open_store("mmap", None)


# ----------------------------------------------------------------------
# Group semantics: spill must be byte-identical to memory
# ----------------------------------------------------------------------


class TestGroupSemantics:
    def test_memory_store_sorted_keys_emission_order(self):
        got = _fill(MemoryStore(), [(b"b", b"1"), (b"a", b"2"),
                                    (b"b", b"3"), (b"a", b"4")])
        assert got == [(b"a", [b"2", b"4"]), (b"b", [b"1", b"3"])]

    @pytest.mark.parametrize("budget", [1, 64, 512, 10**9])
    def test_spill_matches_memory(self, budget):
        pairs = _mixed_pairs()
        want = _fill(MemoryStore(), pairs)
        got = _fill(SpillStore(budget), pairs)
        assert got == want

    def test_budget_smaller_than_one_record(self):
        """A budget below a single record's cost still works: the
        buffer holds exactly the record being emitted, every prior
        record spills, and the tracked peak never exceeds one record."""
        pairs = _mixed_pairs(n=40, keys=3)
        store = SpillStore(1)
        got = _fill(store, pairs)
        assert got == _fill(MemoryStore(), pairs)
        assert store.stats.spill_runs == len(pairs) - 1
        assert store.stats.peak_bytes == max(
            record_cost(k, v) for k, v in pairs
        )

    def test_hot_key_group_exceeds_budget(self):
        """One key whose value list dwarfs the budget: the group is
        materialised outside the tracked buffer, which stays bounded."""
        pairs = [(b"hot", _u32(i)) for i in range(500)]
        store = SpillStore(64)
        groups = _fill(store, pairs)
        assert groups == [(b"hot", [_u32(i) for i in range(500)])]
        assert store.stats.peak_bytes <= 64
        assert store.stats.spill_runs > 1

    def test_empty_input(self):
        store = SpillStore(128)
        assert _fill(store, []) == []
        assert store.stats.spill_runs == 0
        assert store.stats.spilled_bytes == 0
        store.close()  # idempotent

    def test_equal_keys_stable_across_many_runs(self):
        """Values of one key scattered over many spill runs must come
        back in global emission order (runs merge chronologically)."""
        pairs = []
        for i in range(200):
            pairs.append((b"a" if i % 2 else b"z", _u32(i)))
        got = _fill(SpillStore(1), pairs)
        assert got == _fill(MemoryStore(), pairs)

    def test_stats_accounting(self):
        pairs = _mixed_pairs(n=50)
        store = SpillStore(256)
        _fill(store, pairs)
        st = store.stats
        assert st.emitted_records == 50
        assert st.emitted_bytes == sum(record_cost(k, v) for k, v in pairs)
        assert st.peak_bytes <= 256
        # Fan-in counts disk runs plus the in-memory tail sequence.
        assert st.merge_fan_in >= st.spill_runs
        extra = st.as_extra()
        assert extra["spill_runs"] == st.spill_runs
        assert extra["store_peak_bytes"] == st.peak_bytes


# ----------------------------------------------------------------------
# Temp-file lifecycle
# ----------------------------------------------------------------------


def _spill_dirs(root) -> list[str]:
    return glob.glob(os.path.join(str(root), "repro-spill-*"))


class TestSpillDirValidation:
    """A bad $REPRO_SPILL_DIR fails at store *open*, by name — not as
    an OSError from the first spilled run mid-shuffle."""

    def test_missing_dir_fails_at_open(self, tmp_path, monkeypatch):
        missing = str(tmp_path / "nope")
        monkeypatch.setenv("REPRO_SPILL_DIR", missing)
        with pytest.raises(FrameworkError, match="nope"):
            SpillStore(64)

    def test_file_as_dir_fails_at_open(self, tmp_path, monkeypatch):
        f = tmp_path / "afile"
        f.write_text("x")
        monkeypatch.setenv("REPRO_SPILL_DIR", str(f))
        with pytest.raises(FrameworkError, match="afile"):
            SpillStore(64)

    def test_unwritable_dir_fails_at_open(self, tmp_path, monkeypatch):
        if os.getuid() == 0:
            pytest.skip("root ignores directory permissions")
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o555)
        monkeypatch.setenv("REPRO_SPILL_DIR", str(ro))
        with pytest.raises(FrameworkError, match="not writable"):
            SpillStore(64)

    def test_explicit_spill_dir_skips_env(self, tmp_path, monkeypatch):
        # A caller-owned dir is used as-is; the env is not consulted.
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "nope"))
        store = SpillStore(1, spill_dir=str(tmp_path), prefix="s")
        store.emit(b"k", _u32(1))
        store.emit(b"k", _u32(2))
        store.close()


class TestCleanup:
    def test_close_removes_runs_in_shared_dir(self, tmp_path):
        store = SpillStore(1, spill_dir=str(tmp_path), prefix="shard0")
        for i in range(10):
            store.emit(b"k", _u32(i))
        assert glob.glob(str(tmp_path / "shard0-*.run"))
        store.close()
        assert glob.glob(str(tmp_path / "*.run")) == []
        assert tmp_path.exists()  # shared dir belongs to the caller

    def test_own_dir_removed_after_full_iteration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        store = SpillStore(1)
        for i in range(5):
            store.emit(b"k", _u32(i))
        assert len(_spill_dirs(tmp_path)) == 1
        assert len(list(store.iter_groups())) == 1
        assert _spill_dirs(tmp_path) == []  # iter_groups closes on exhaustion

    def test_abandoned_iteration_still_cleans_up(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path))
        store = SpillStore(1)
        for i in range(20):
            store.emit(b"k%d" % i, _u32(i))
        it = store.iter_groups()
        next(it)  # consume one group, then walk away
        store.close()
        assert _spill_dirs(tmp_path) == []

    def test_flush_runs_transfers_ownership(self, tmp_path):
        """flush_runs hands the files to the caller: close() must not
        delete them, and merge_runs streams them back correctly."""
        store = SpillStore(1, spill_dir=str(tmp_path), prefix="w0")
        pairs = _mixed_pairs(n=30, keys=4)
        store.emit_many(pairs)
        runs = store.flush_runs()
        store.close()
        assert all(os.path.exists(p) for p in runs)
        assert list(merge_runs([runs])) == _fill(MemoryStore(), pairs)

    def test_merge_runs_shard_order(self, tmp_path):
        """Equal keys accumulate shard-by-shard, matching the
        non-spilled shuffle's concatenation order."""
        shards = []
        for shard, base in enumerate((0, 100)):
            store = SpillStore(1, spill_dir=str(tmp_path),
                               prefix=f"s{shard}")
            for i in range(3):
                store.emit(b"k", _u32(base + i))
            shards.append(store.flush_runs())
            store.close()
        merged = list(merge_runs(shards))
        assert merged == [(b"k", [_u32(v) for v in (0, 1, 2,
                                                    100, 101, 102)])]
