"""Integration tests asserting the paper's *qualitative* claims.

These are the reproduction's success criteria (DESIGN.md section 5):
each test runs a scaled-down version of an evaluation experiment and
asserts the directional result the paper reports — who wins, where the
benefit comes from — not absolute numbers.
"""

import pytest

from repro.analysis.figures import (
    fig5_map_sweep,
    fig5_reduce_sweep,
    fig7_speedup_over_mars,
    fig8_yield_sweep,
    run_map_kernel,
)
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu import DeviceConfig
from repro.workloads import (
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

#: Full-size device: contention effects need the real MP count.
GTX = DeviceConfig.gtx280()


@pytest.fixture(scope="module")
def wc_sweep():
    return fig5_map_sweep(WordCount(), size="medium", config=GTX,
                          block_sizes=(64, 128, 256))


@pytest.fixture(scope="module")
def ii_sweep():
    return fig5_map_sweep(InvertedIndex(), size="small", config=GTX,
                          block_sizes=(128,))


@pytest.fixture(scope="module")
def km_sweep():
    # KM's contention effects need the large vector count.
    return fig5_map_sweep(KMeans(), size="large", config=GTX,
                          block_sizes=(256,))


class TestMapClaims:
    def test_wc_output_staging_wins_big(self, wc_sweep):
        """Section IV-D: for WC, SO brings > 2x over G (atomic
        contention relief)."""
        assert wc_sweep.speedup("SO", "G", 128) > 2.0

    def test_wc_sio_best_or_close(self, wc_sweep):
        best = wc_sweep.best_mode(128)
        assert best in ("SIO", "SO")
        assert wc_sweep.speedup("SIO", "G", 128) > 2.0

    def test_wc_g_does_not_scale_with_block_size(self, wc_sweep):
        """'both G and SI produce longer Map execution time when the
        number of threads per block increases, while SO and SIO
        benefit' — G must not improve markedly from 64 to 256."""
        g = wc_sweep.series["G"]
        assert g[2] > 0.85 * g[0]

    def test_wc_sio_improves_with_block_size(self, wc_sweep):
        sio = wc_sweep.series["SIO"]
        assert sio[2] < sio[0]

    def test_ii_staged_input_dominates(self, ii_sweep):
        """'II benefits significantly and solely from staging input.'"""
        assert ii_sweep.speedup("SI", "G", 128) > 2.0
        assert ii_sweep.speedup("SIO", "G", 128) > 2.0
        # SO alone gives II little (may even hurt).
        assert ii_sweep.speedup("SO", "G", 128) < 1.5

    def test_km_needs_both(self, km_sweep):
        """'only by combining SO and SI can we receive a significant
        improvement' for KMeans: SO alone gives nothing, SIO is a
        clear winner.  (Deviation noted in EXPERIMENTS.md: in our
        simulator SI alone already captures most of the input-locality
        gain, whereas the paper's SI-alone benefit was muted.)"""
        sio_gain = km_sweep.speedup("SIO", "G", 256)
        so_gain = km_sweep.speedup("SO", "G", 256)
        assert sio_gain > 1.5
        assert so_gain < 1.2          # SO alone: no real benefit
        assert sio_gain > 2 * so_gain  # the combination is the winner

    def test_mm_modes_are_close(self):
        """MM 'reads data anyway from global memory, bringing the four
        modes closer in performance' (within ~2x of each other)."""
        res = fig5_map_sweep(MatrixMultiplication(), size="medium",
                             config=GTX, block_sizes=(128,))
        vals = [res.series[m][0] for m in ("G", "SI", "SO", "SIO")]
        assert max(vals) / min(vals) < 2.0

    def test_mm_gt_beats_si(self):
        """'MM-M's GT mode shows superior performance over SI because
        ... vectors can be cached' in the texture cache."""
        res = fig5_map_sweep(MatrixMultiplication(), size="medium",
                             config=GTX, block_sizes=(128,),
                             modes=(MemoryMode.GT, MemoryMode.SI))
        assert res.series["GT"][0] < res.series["SI"][0]

    def test_average_sio_speedup_in_paper_band(self, wc_sweep, ii_sweep,
                                               km_sweep):
        """Paper: SIO averages 2.85x over G (max 7.5x).  Demand the
        average across our workloads lands in a generous 1.5-8x band."""
        sm = fig5_map_sweep(StringMatch(), size="medium", config=GTX,
                            block_sizes=(128,))
        gains = [
            wc_sweep.speedup("SIO", "G", 128),
            ii_sweep.speedup("SIO", "G", 128),
            km_sweep.speedup("SIO", "G", 256),
            sm.speedup("SIO", "G", 128),
        ]
        avg = sum(gains) / len(gains)
        assert 1.5 < avg < 8.0


class TestReduceClaims:
    @pytest.fixture(scope="class")
    def km_br(self):
        return fig5_reduce_sweep(KMeans(), ReduceStrategy.BR, size="medium",
                                 config=GTX, block_sizes=(128,))

    @pytest.fixture(scope="class")
    def wc_tr(self):
        return fig5_reduce_sweep(WordCount(), ReduceStrategy.TR, size="small",
                                 config=GTX, block_sizes=(128,))

    def test_km_br_staged_input_wins(self, km_br):
        """Section IV-E: KM-BR SI ~2.25x over G (wide vectors span
        many segments under G)."""
        g = km_br.series["G"][0]
        si = km_br.series["SI"][0]
        assert g / si > 1.4

    def test_so_never_helps_reduce(self, km_br, wc_tr):
        """'The benefit of staging output through shared memory cannot
        offset its overhead' for Reduce: SO gives no real gain over G
        (strictly worse for TR; within noise for BR, where our
        collective-flush variant overlaps slightly differently)."""
        assert km_br.series["SO"][0] >= 0.9 * km_br.series["G"][0]
        assert wc_tr.series["SO"][0] >= wc_tr.series["G"][0]

    def test_tr_vs_br_by_keyset_shape(self):
        """'BR works better for KM (few large key sets), TR for WC
        (many small ones).'"""
        km_tr = fig5_reduce_sweep(KMeans(), ReduceStrategy.TR, size="medium",
                                  config=GTX, block_sizes=(128,),
                                  modes=(MemoryMode.G,))
        km_br = fig5_reduce_sweep(KMeans(), ReduceStrategy.BR, size="medium",
                                  config=GTX, block_sizes=(128,),
                                  modes=(MemoryMode.G,))
        assert km_br.series["G"][0] < km_tr.series["G"][0]

        # "TR achieves more parallelism with WC across key sets": it
        # needs a key-set population larger than the device's block
        # slots, so use the vocabulary-rich WC configuration (the
        # paper's 64 MB corpus has 10,000s of distinct words).
        rich_wc = WordCount(vocabulary_size=8192)
        wc_tr = fig5_reduce_sweep(rich_wc, ReduceStrategy.TR, size="small",
                                  config=GTX, block_sizes=(128,),
                                  modes=(MemoryMode.G,))
        wc_br = fig5_reduce_sweep(rich_wc, ReduceStrategy.BR, size="small",
                                  config=GTX, block_sizes=(128,),
                                  modes=(MemoryMode.G,))
        assert wc_tr.series["G"][0] < wc_br.series["G"][0]


class TestMarsClaims:
    def test_wc_g_map_loses_to_mars(self):
        """Figure 7: 'negative speedup in WC and SM ... the two-pass
        running is better' when atomics bottleneck the single pass."""
        rows = fig7_speedup_over_mars(WordCount(), size="small", config=GTX)
        map_row = next(r for r in rows if r.phase == "map")
        assert map_row.speedups["G"] < 1.0

    def test_wc_sio_map_beats_mars(self):
        rows = fig7_speedup_over_mars(WordCount(), size="small", config=GTX)
        map_row = next(r for r in rows if r.phase == "map")
        assert 1.3 < map_row.speedups["SIO"] < 6.0

    def test_g_reduce_beats_mars(self):
        """'The G mode also delivers better performance for the two
        Reduce kernels, compared to Mars.'"""
        rows = fig7_speedup_over_mars(WordCount(), size="small", config=GTX)
        red_row = next(r for r in rows if r.phase == "reduce")
        assert red_row.speedups["G"] > 1.0

    def test_ii_si_map_beats_mars(self):
        rows = fig7_speedup_over_mars(InvertedIndex(), size="small",
                                      config=GTX)
        map_row = next(r for r in rows if r.phase == "map")
        assert map_row.speedups["SI"] > 1.5


class TestYieldClaims:
    def test_yield_helps_at_large_blocks(self):
        """Figure 8: the benefit appears at >= 128 threads/block and
        the improvement lies in roughly the -1.2%..13% band (we allow
        a wider band: poll costs are model-scaled)."""
        rows = fig8_yield_sweep(WordCount(), size="medium", config=GTX,
                                block_sizes=(128, 256))
        for r in rows:
            assert r.improvement_pct > -10.0
        assert max(r.improvement_pct for r in rows) > 0.0
