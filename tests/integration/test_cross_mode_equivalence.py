"""Cross-mode functional-equivalence properties.

The memory-usage mode is a *performance* choice: it must never change
a job's functional output.  These tests sweep modes, block sizes,
strategies and shuffle methods over randomised workloads and assert
output identity (modulo the record reordering that atomic appends
legitimately introduce, handled by normalisation).
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu_ref import normalised, reference_job
from repro.framework import (
    KeyValueSet,
    MapReduceSpec,
    MemoryMode,
    ReduceStrategy,
    run_job,
)
from repro.gpu import DeviceConfig

CFG = DeviceConfig.small(2)


def tag_map(key, value, emit, const):
    """Emit one record per byte of the key over a small tag alphabet."""
    for b in key.to_bytes():
        emit(bytes([97 + b % 7]), struct.pack("<I", b))


def sum_reduce(key, values, emit, const):
    emit(key.to_bytes(), struct.pack("<Q", sum(v.u32() for v in values)))


SPEC = MapReduceSpec(name="xmode", map_record=tag_map, reduce_record=sum_reduce)

inputs = st.lists(
    st.tuples(st.binary(min_size=1, max_size=30), st.just(b"")),
    min_size=1,
    max_size=60,
)


@given(inputs, st.sampled_from(list(MemoryMode)), st.sampled_from([64, 128]))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_mode_matches_oracle(records, mode, tpb):
    inp = KeyValueSet(records)
    ref = normalised(reference_job(SPEC, inp, ReduceStrategy.TR))
    res = run_job(SPEC, inp, mode=mode, strategy=ReduceStrategy.TR,
                  config=CFG, threads_per_block=tpb)
    assert normalised(res.output) == ref


@given(inputs)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_shuffle_method_is_functionally_invisible(records):
    inp = KeyValueSet(records)
    a = run_job(SPEC, inp, mode=MemoryMode.G, strategy=ReduceStrategy.TR,
                config=CFG, shuffle_method="sort")
    b = run_job(SPEC, inp, mode=MemoryMode.G, strategy=ReduceStrategy.TR,
                config=CFG, shuffle_method="hash")
    assert normalised(a.output) == normalised(b.output)


@given(inputs)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_yield_discipline_is_functionally_invisible(records):
    inp = KeyValueSet(records)
    a = run_job(SPEC, inp, mode=MemoryMode.SIO, strategy=None,
                config=CFG, yield_sync=True)
    b = run_job(SPEC, inp, mode=MemoryMode.SIO, strategy=None,
                config=CFG, yield_sync=False)
    assert normalised(a.output) == normalised(b.output)


def test_all_mode_strategy_combinations_once():
    """One deterministic pass over the full legal matrix."""
    spec = MapReduceSpec(
        name="matrix",
        map_record=tag_map,
        reduce_record=sum_reduce,
        combine=lambda a, b: struct.pack(
            "<Q",
            (int.from_bytes(a.ljust(8, b"\0")[:8], "little")
             + int.from_bytes(b.ljust(8, b"\0")[:8], "little")),
        ),
        finalize=lambda k, acc, n: (k, acc),
    )
    inp = KeyValueSet([(bytes([i, i + 1, i + 2]), b"") for i in range(40)])
    outputs = set()
    for strategy in (None, ReduceStrategy.TR, ReduceStrategy.BR):
        for mode in MemoryMode:
            if strategy is ReduceStrategy.BR and mode is MemoryMode.GT:
                continue  # illegal: texture x in-place updates
            res = run_job(spec, inp, mode=mode, strategy=strategy,
                          config=CFG, threads_per_block=64)
            outputs.add((strategy, tuple(normalised(res.output))))
    # One distinct output per strategy (map-only vs TR vs BR), never
    # per mode.
    assert len(outputs) == 3
    tr = next(o for s, o in outputs if s is ReduceStrategy.TR)
    br = next(o for s, o in outputs if s is ReduceStrategy.BR)
    # TR emits <Q> sums; BR's combine pads to 8 bytes too: equal here.
    assert tr == br
