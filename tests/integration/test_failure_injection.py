"""Failure-injection tests: the system must fail loudly and cleanly.

A simulator that silently produces wrong numbers is worse than one
that crashes; these tests inject faults at awkward points (mid-flush,
mid-staging, capacity edges) and assert the error surfaces as the
right exception type with a useful message — never a hang, never
corrupted output that looks plausible.
"""

import struct

import pytest

from repro.errors import (
    DeadlockError,
    FrameworkError,
    KernelFault,
    LaunchError,
)
from repro.framework import (
    KeyValueSet,
    MapReduceSpec,
    MemoryMode,
    ReduceStrategy,
    run_job,
)
from repro.gpu import Device, DeviceConfig

CFG = DeviceConfig.small(2)


@pytest.fixture(autouse=True)
def _always_simulate(monkeypatch):
    """These tests assert the *simulator's* fault surface (KernelFault
    from warp execution, capacity/launch edges); a $REPRO_BACKEND
    override to a functional backend would test a different error
    path, so the whole module pins the default sim backend."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)


def make_input(n=60):
    return KeyValueSet(
        [(f"rec{i:03d}".encode(), struct.pack("<I", i)) for i in range(n)]
    )


class TestUserCodeFaults:
    def test_map_fn_exception_becomes_kernel_fault(self):
        def bad_map(key, value, emit, const):
            if key.to_bytes() == b"rec037":
                raise RuntimeError("injected map failure")
            emit(key.to_bytes(), b"x")

        spec = MapReduceSpec(name="bad", map_record=bad_map)
        with pytest.raises(KernelFault, match="injected map failure"):
            run_job(spec, make_input(), mode=MemoryMode.SIO, config=CFG)

    def test_reduce_fn_exception_becomes_kernel_fault(self):
        def ok_map(key, value, emit, const):
            emit(b"k", b"v")

        def bad_reduce(key, values, emit, const):
            raise ValueError("injected reduce failure")

        spec = MapReduceSpec(name="badr", map_record=ok_map,
                             reduce_record=bad_reduce)
        with pytest.raises(KernelFault, match="injected reduce failure"):
            run_job(spec, make_input(), mode=MemoryMode.G,
                    strategy=ReduceStrategy.TR, config=CFG)

    def test_emit_non_bytes_fails(self):
        def typo_map(key, value, emit, const):
            emit("not-bytes", b"v")  # a str, not bytes

        spec = MapReduceSpec(name="typo", map_record=typo_map)
        with pytest.raises((KernelFault, TypeError)):
            run_job(spec, make_input(), mode=MemoryMode.G, config=CFG)

    def test_fault_during_staged_emission(self):
        """Blow up after some emissions landed in the smem output
        area: the launch must abort, not deadlock on the helpers."""
        state = {"n": 0}

        def flaky_map(key, value, emit, const):
            emit(key.to_bytes() * 3, b"payload" * 4)
            state["n"] += 1
            if state["n"] == 40:
                raise RuntimeError("mid-collection fault")

        spec = MapReduceSpec(name="flaky", map_record=flaky_map)
        with pytest.raises(KernelFault, match="mid-collection fault"):
            run_job(spec, make_input(), mode=MemoryMode.SO, config=CFG)


class TestCapacityEdges:
    def test_output_capacity_exhaustion_is_detected(self):
        def amplify_map(key, value, emit, const):
            for i in range(64):
                emit(key.to_bytes() + bytes([i]), b"y" * 64)

        # out_bytes_factor far too small for 64x amplification.
        spec = MapReduceSpec(name="amp", map_record=amplify_map,
                             out_bytes_factor=0.5, out_records_factor=0.5)
        with pytest.raises((KernelFault, FrameworkError), match="overflow"):
            run_job(spec, make_input(), mode=MemoryMode.G, config=CFG)

    def test_record_bigger_than_input_area(self):
        spec = MapReduceSpec(
            name="huge", map_record=lambda k, v, e, c: e(b"k", b"v")
        )
        inp = KeyValueSet([(b"x" * 15000, b"")])
        with pytest.raises(FrameworkError, match="input area"):
            run_job(spec, inp, mode=MemoryMode.SI, config=CFG)

    def test_warp_result_bigger_than_output_area(self):
        def monster_map(key, value, emit, const):
            emit(b"k" * 8000, b"")

        spec = MapReduceSpec(name="monster", map_record=monster_map)
        with pytest.raises(KernelFault, match="output area"):
            run_job(spec, make_input(), mode=MemoryMode.SO, config=CFG,
                    threads_per_block=64)


class TestSchedulerEdges:
    def test_max_cycles_guards_runaway_kernels(self):
        dev = Device(CFG)

        def runaway(ctx):
            while True:
                yield from ctx.compute(1000)

        with pytest.raises(DeadlockError, match="max_cycles"):
            dev.launch(runaway, grid=1, block=32, max_cycles=1e6)

    def test_zero_smem_launch_with_staging_rejected(self):
        """Staged modes cannot run without their smem layout."""
        spec = MapReduceSpec(
            name="x", map_record=lambda k, v, e, c: e(b"k", b"v"),
            working_bytes_per_thread=4096,  # overflows 16 KB at 128 thr
        )
        from repro.errors import ConfigError

        with pytest.raises((FrameworkError, LaunchError, ConfigError)):
            run_job(spec, make_input(), mode=MemoryMode.SIO, config=CFG)

    def test_gmem_state_remains_usable_after_fault(self):
        """A failed launch must not poison the device for later jobs."""
        dev = Device(CFG)

        def bad(ctx):
            yield from ctx.compute(1)
            raise RuntimeError("boom")

        with pytest.raises(KernelFault):
            dev.launch(bad, grid=1, block=32)

        spec = MapReduceSpec(
            name="after", map_record=lambda k, v, e, c: e(k.to_bytes(), b"1")
        )
        res = run_job(spec, make_input(10), mode=MemoryMode.G, device=dev)
        assert len(res.output) == 10
