"""The columnar fast backend: selection, batching, fallback, parity.

Covers what the cross-backend differential matrix does not: how the
columnar path is *selected* (constructor, plan, ``$REPRO_COLUMNAR``,
the ``"columnar"`` registry name), the batch-kernel decline contract
(None -> per-batch scalar fallback), kernels that exist on only one
side (batch Map + scalar Reduce and vice versa), the batch-width env,
streamed and Mars jobs under columnar, and the observability counters
(KernelStats extras + ledger fields).
"""

import pytest

from repro.backend import BACKENDS, ColumnarBackend, FastBackend, get_backend
from repro.backend.fast import (
    COLUMNAR_BATCH_ENV,
    COLUMNAR_ENV,
    columnar_env_enabled,
)
from repro.errors import FrameworkError
from repro.framework import ReduceStrategy, run_job, run_streamed_job
from repro.framework.api import MapReduceSpec
from repro.framework.columns import Column, ColumnBatch
from repro.framework.records import KeyValueSet
from repro.workloads import Histogram, KMeans, WordCount


def _ident(key, value, emit, const):
    emit(key.to_bytes(), value.to_bytes())


def _count(key, values, emit, const):
    emit(key.to_bytes(), len(values).to_bytes(4, "little"))


def _inp(n=100, keys=5):
    out = KeyValueSet()
    for i in range(n):
        out.append(b"k%02d" % (i % keys), i.to_bytes(4, "little"))
    return out


class TestSelection:
    def test_registry_has_columnar(self):
        assert "columnar" in BACKENDS
        be = get_backend("columnar")
        assert isinstance(be, ColumnarBackend)
        assert be.columnar is True

    def test_env_enables(self, monkeypatch):
        monkeypatch.delenv(COLUMNAR_ENV, raising=False)
        assert not columnar_env_enabled()
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(COLUMNAR_ENV, value)
            assert columnar_env_enabled(), value
        for value in ("0", "off", "", "no"):
            monkeypatch.setenv(COLUMNAR_ENV, value)
            assert not columnar_env_enabled(), value

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_ENV, "1")
        spec = MapReduceSpec(name="t", map_record=_ident,
                             reduce_record=_count)
        scalar = run_job(spec, _inp(), strategy=ReduceStrategy.TR,
                         backend=FastBackend(columnar=False))
        env = run_job(spec, _inp(), strategy=ReduceStrategy.TR,
                      backend="fast")
        assert "columnar_batches" in env.map_stats.extra
        assert "columnar_batches" not in scalar.map_stats.extra
        assert env.output == scalar.output

    def test_bad_batch_env_rejected(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_BATCH_ENV, "zero")
        with pytest.raises(FrameworkError):
            run_job(MapReduceSpec(name="t", map_record=_ident), _inp(4),
                    backend=FastBackend(columnar=True))
        monkeypatch.setenv(COLUMNAR_BATCH_ENV, "0")
        with pytest.raises(FrameworkError):
            run_job(MapReduceSpec(name="t", map_record=_ident), _inp(4),
                    backend=FastBackend(columnar=True))

    def test_batch_width_env_splits_batches(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_BATCH_ENV, "16")
        spec = MapReduceSpec(name="t", map_record=_ident,
                             reduce_record=_count)
        res = run_job(spec, _inp(100), strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        assert res.map_stats.extra["columnar_batches"] == 7  # ceil(100/16)
        scalar = run_job(spec, _inp(100), strategy=ReduceStrategy.TR,
                         backend="fast")
        assert res.output == scalar.output


class TestBatchKernelContract:
    def test_map_batch_only_with_scalar_reduce(self):
        """Regression: a spec with map_batch but no reduce_batch mixes
        the vectorized Map with the scalar Reduce loop over
        GroupedColumns — this seam once had no direct coverage."""

        def map_batch(cols, *, const=None):
            return cols  # identity, columnar

        spec = MapReduceSpec(name="mixed", map_record=_ident,
                             reduce_record=_count, map_batch=map_batch)
        inp = _inp(200)
        col = run_job(spec, inp, strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        scalar = run_job(spec, inp, strategy=ReduceStrategy.TR,
                         backend="fast")
        assert col.output == scalar.output
        assert col.map_stats.extra["columnar_map_vectorized"] >= 1
        assert col.reduce_stats.extra["columnar_reduce_vectorized"] == 0

    def test_reduce_batch_only_with_scalar_map(self):
        """WordCount's shape: ragged Map stays scalar, Reduce runs the
        batch kernel over the grouped columns."""
        wl = WordCount()
        inp = wl.generate("small", seed=2, scale=0.2)
        col = run_job(wl.spec(), inp, strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        scalar = run_job(wl.spec(), inp, strategy=ReduceStrategy.TR,
                         backend="fast")
        assert col.output == scalar.output
        assert col.map_stats.extra["columnar_map_vectorized"] == 0
        assert col.map_stats.extra["columnar_map_fallback"] >= 1
        assert col.reduce_stats.extra["columnar_reduce_vectorized"] == 1

    def test_declining_map_batch_falls_back_per_batch(self, monkeypatch):
        monkeypatch.setenv(COLUMNAR_BATCH_ENV, "10")
        calls = []

        def map_batch(cols, *, const=None):
            calls.append(len(cols))
            if len(calls) % 2:
                return None  # decline odd batches
            return cols

        spec = MapReduceSpec(name="decline", map_record=_ident,
                             reduce_record=_count, map_batch=map_batch)
        inp = _inp(40)
        col = run_job(spec, inp, strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        scalar = run_job(spec, inp, strategy=ReduceStrategy.TR,
                         backend="fast")
        assert col.output == scalar.output
        assert col.map_stats.extra["columnar_map_vectorized"] == 2
        assert col.map_stats.extra["columnar_map_fallback"] == 2

    def test_declining_reduce_batch_falls_back(self):
        def reduce_batch(keys, offsets, values, *, const=None):
            return None

        spec = MapReduceSpec(name="rdecline", map_record=_ident,
                             reduce_record=_count,
                             reduce_batch=reduce_batch)
        col = run_job(spec, _inp(50), strategy=ReduceStrategy.TR,
                      backend=FastBackend(columnar=True))
        scalar = run_job(spec, _inp(50), strategy=ReduceStrategy.TR,
                         backend="fast")
        assert col.output == scalar.output
        assert col.reduce_stats.extra["columnar_reduce_vectorized"] == 0

    def test_bad_map_batch_return_type_rejected(self):
        spec = MapReduceSpec(name="bad", map_record=_ident,
                             map_batch=lambda cols, *, const=None: [1, 2])
        with pytest.raises(FrameworkError, match="map_batch"):
            run_job(spec, _inp(4), backend=FastBackend(columnar=True))

    def test_bad_reduce_batch_return_type_rejected(self):
        spec = MapReduceSpec(
            name="bad", map_record=_ident, reduce_record=_count,
            reduce_batch=lambda k, o, v, *, const=None: "nope",
        )
        with pytest.raises(FrameworkError, match="reduce_batch"):
            run_job(spec, _inp(4), strategy=ReduceStrategy.TR,
                    backend=FastBackend(columnar=True))

    def test_reduce_batch_not_used_for_br(self):
        """BR folds stay scalar by contract even when a batch Reduce
        kernel exists — combine/finalize semantics differ from TR."""
        wl = Histogram()
        inp = wl.generate("small", seed=1, scale=0.2)
        col = run_job(wl.spec(), inp, strategy=ReduceStrategy.BR,
                      backend=FastBackend(columnar=True))
        scalar = run_job(wl.spec(), inp, strategy=ReduceStrategy.BR,
                         backend="fast")
        assert col.output == scalar.output
        assert col.reduce_stats.extra["columnar_reduce_vectorized"] == 0


class TestJobShapes:
    def test_map_only_job(self):
        spec = MapReduceSpec(name="maponly", map_record=_ident)
        col = run_job(spec, _inp(60), backend=FastBackend(columnar=True))
        scalar = run_job(spec, _inp(60), backend="fast")
        assert col.output == scalar.output

    def test_streamed_job_columnar_tail(self):
        wl = WordCount()
        inp = wl.generate("small", seed=4, scale=0.2)
        col = run_streamed_job(wl.spec(), inp, n_batches=3,
                               strategy=ReduceStrategy.TR,
                               backend=FastBackend(columnar=True))
        scalar = run_streamed_job(wl.spec(), inp, n_batches=3,
                                  strategy=ReduceStrategy.TR,
                                  backend="fast")
        assert col.job.output == scalar.job.output

    def test_mars_job_columnar(self):
        from repro.mars.framework import run_mars_job

        wl = KMeans()
        inp = wl.generate("small", seed=6)
        spec = wl.spec_for_seed(6)
        col = run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                           backend=FastBackend(columnar=True))
        scalar = run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                              backend="fast")
        assert col.output == scalar.output
        assert col.reduce_stats.extra["columnar_reduce_vectorized"] == 1

    def test_parallel_backend_stays_scalar(self, monkeypatch):
        from repro.backend import ParallelBackend

        monkeypatch.setenv(COLUMNAR_ENV, "1")
        wl = WordCount()
        inp = wl.generate("small", seed=5, scale=0.2)
        par = run_job(wl.spec(), inp, strategy=ReduceStrategy.TR,
                      backend=ParallelBackend(workers=2, min_records=0))
        scalar = run_job(wl.spec(), inp, strategy=ReduceStrategy.TR,
                         backend=FastBackend(columnar=False))
        assert par.output == scalar.output
        assert "columnar_batches" not in par.map_stats.extra


class TestLedgerColumns:
    def test_ledger_records_columnar_counters(self, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path))
        monkeypatch.setenv(COLUMNAR_ENV, "1")
        wl = KMeans()
        inp = wl.generate("small", seed=3)
        run_job(wl.spec_for_seed(3), inp, strategy=ReduceStrategy.TR,
                backend="fast")
        lines = (tmp_path / "runs.jsonl").read_text().splitlines()
        rec = json.loads(lines[-1])
        assert rec["columnar_batches"] >= 1
        assert rec["columnar_map_vectorized"] >= 1
        assert rec["columnar_reduce_vectorized"] == 1
        # A scalar run leaves the columnar fields null.
        monkeypatch.setenv(COLUMNAR_ENV, "0")
        run_job(wl.spec_for_seed(3), inp, strategy=ReduceStrategy.TR,
                backend="fast")
        rec2 = json.loads(
            (tmp_path / "runs.jsonl").read_text().splitlines()[-1]
        )
        assert rec2["columnar_batches"] is None


class TestWorkerCountValidation:
    def test_parallel_n_rejects_bad_counts(self):
        for bad in ("parallel:0", "parallel:-2", "parallel:two",
                    "parallel:"):
            with pytest.raises(FrameworkError):
                get_backend(bad)
        assert get_backend("parallel:3").workers == 3

    def test_workers_env_rejects_bad_values(self, monkeypatch):
        from repro.backend.parallel import default_workers

        for bad in ("0", "-1", "abc", "1.5"):
            monkeypatch.setenv("REPRO_WORKERS", bad)
            with pytest.raises(FrameworkError):
                default_workers()
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
