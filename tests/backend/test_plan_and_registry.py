"""Unit tests for JobPlan normalisation and the backend registry."""

import pytest

from repro.backend import (
    BACKEND_ENV,
    BACKENDS,
    BatchPolicy,
    ENGINE_MARS,
    FastBackend,
    JobPlan,
    SimBackend,
    execute_plan,
    get_backend,
)
from repro.errors import FrameworkError
from repro.framework import (
    KeyValueSet,
    MapReduceSpec,
    MemoryMode,
    ReduceStrategy,
)


def _spec(**kw):
    def m(key, value, emit, const):
        emit(b"k", b"v")

    return MapReduceSpec(name="t", map_record=m, **kw)


class TestJobPlanNormalise:
    def test_string_modes_coerced(self):
        p = JobPlan(spec=_spec(), mode="SI", reduce_mode="G").normalised()
        assert p.mode is MemoryMode.SI
        assert p.reduce_mode is MemoryMode.G

    def test_reduce_mode_defaults_to_mode(self):
        p = JobPlan(spec=_spec(), mode=MemoryMode.SO).normalised()
        assert p.reduce_mode is MemoryMode.SO

    def test_auto_leaves_reduce_mode_open(self):
        p = JobPlan(spec=_spec(), mode="auto").normalised()
        assert p.mode == "auto"
        assert p.reduce_mode is None

    def test_unknown_engine_rejected(self):
        with pytest.raises(FrameworkError):
            JobPlan(spec=_spec(), engine="cuda").normalised()

    def test_mars_labels_and_mode(self):
        p = JobPlan(spec=_spec(), engine=ENGINE_MARS).normalised()
        assert p.result_mode == "Mars"
        assert p.input_label() == "mars_in.t"
        assert p.shuffle_label() == "mars_shuf.t"

    def test_batched_labels(self):
        p = JobPlan(spec=_spec(), batching=BatchPolicy(3)).normalised()
        assert p.input_label(2) == "stream.t.2"
        assert p.intermediate_label() == "stream.inter.t"
        assert p.shuffle_label() == "stream.shuf.t"

    def test_batch_policy_validation(self):
        with pytest.raises(FrameworkError):
            BatchPolicy(n_batches=0).validate()


class TestRegistry:
    def test_known_backends(self):
        from repro.backend import DistributedBackend, ParallelBackend

        assert set(BACKENDS) == {"sim", "fast", "parallel", "columnar",
                                 "dist"}
        assert isinstance(get_backend("sim"), SimBackend)
        assert isinstance(get_backend("fast"), FastBackend)
        assert isinstance(get_backend("parallel"), ParallelBackend)
        assert isinstance(get_backend("dist"), DistributedBackend)
        assert get_backend("columnar").columnar is True

    def test_instance_passthrough(self):
        b = FastBackend()
        assert get_backend(b) is b

    def test_unknown_name_lists_choices(self):
        with pytest.raises(FrameworkError, match="sim"):
            get_backend("gpu")

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(get_backend(None), SimBackend)
        monkeypatch.setenv(BACKEND_ENV, "fast")
        assert isinstance(get_backend(None), FastBackend)
        monkeypatch.setenv(BACKEND_ENV, "")
        assert isinstance(get_backend(None), SimBackend)


class TestExecutePlanGuards:
    def test_batched_plan_rejected(self):
        inp = KeyValueSet()
        inp.append(b"a", b"b")
        plan = JobPlan(spec=_spec(), batching=BatchPolicy(2)).normalised()
        with pytest.raises(ValueError, match="execute_streamed"):
            execute_plan(plan, inp, get_backend("fast"))
