"""Every driver front-end runs under the fast backend and agrees with
the simulator functionally: streamed, iterative, Mars, auto mode."""

import struct

import numpy as np
import pytest

from repro.cpu_ref import normalised
from repro.framework import (
    IterativeJob,
    MemoryMode,
    ReduceStrategy,
    run_job,
    run_streamed_job,
)
from repro.framework.pipeline import IterativeResult
from repro.gpu import DeviceConfig
from repro.mars.framework import run_mars_job
from repro.errors import FrameworkError
from repro.workloads import KMeans, WordCount

CFG = DeviceConfig.small(2)


class TestStreamedFast:
    def test_output_matches_sim(self):
        wc = WordCount()
        inp = wc.generate("small", scale=0.3, seed=3)
        spec = wc.spec()
        sim = run_streamed_job(spec, inp, n_batches=3,
                               strategy=ReduceStrategy.TR, config=CFG)
        fast = run_streamed_job(spec, inp, n_batches=3,
                                strategy=ReduceStrategy.TR, config=CFG,
                                backend="fast")
        assert normalised(fast.job.output) == normalised(sim.job.output)
        assert len(fast.batches) == len(sim.batches)
        assert [b.records for b in fast.batches] == \
            [b.records for b in sim.batches]
        # Fast transfers use the same PCIe model, so upload costs agree.
        assert [b.upload_cycles for b in fast.batches] == \
            pytest.approx([b.upload_cycles for b in sim.batches])

    def test_map_only_stream(self):
        wc = WordCount()
        inp = wc.generate("small", scale=0.2, seed=4)
        fast = run_streamed_job(wc.spec(), inp, n_batches=2, strategy=None,
                                config=CFG, backend="fast")
        sim = run_streamed_job(wc.spec(), inp, n_batches=2, strategy=None,
                               config=CFG)
        assert normalised(fast.job.output) == normalised(sim.job.output)
        assert fast.job.timings.io_out == pytest.approx(
            sim.job.timings.io_out)


class TestIterativeFast:
    def _job(self, backend):
        km = KMeans()
        inp = km.generate("small", seed=5, scale=0.25)
        spec0 = km.spec_for_seed(5)

        def make_spec(i, centroids):
            s = km.spec()
            s.const_bytes = centroids
            return s

        def update(i, result, centroids):
            cen = np.frombuffer(centroids, dtype="<f4").reshape(-1, 8).copy()
            for k, v in result.output:
                cen[struct.unpack("<I", k)[0]] = np.frombuffer(v, dtype="<f4")
            return cen.astype("<f4").tobytes()

        job = IterativeJob(
            make_spec=make_spec, update=update,
            converged=lambda i, old, new: old == new,
            mode=MemoryMode.SIO, strategy=ReduceStrategy.TR, config=CFG,
            backend=backend,
        )
        return job.run(inp, spec0.const_bytes, max_iterations=4)

    def test_matches_sim_iteration_for_iteration(self):
        fast = self._job("fast")
        sim = self._job("sim")
        assert isinstance(fast, IterativeResult)
        assert fast.n_iterations == sim.n_iterations
        assert fast.state == sim.state
        assert normalised(fast.last.output) == normalised(sim.last.output)
        # The fast backend never models kernel time.
        assert all(
            t.timings.map == 0.0 and t.timings.reduce == 0.0
            for t in fast.iterations
        )


class TestMarsFast:
    def test_output_matches_sim(self):
        wc = WordCount()
        inp = wc.generate("small", scale=0.25, seed=6)
        sim = run_mars_job(wc.spec(), inp, strategy=ReduceStrategy.TR,
                           config=CFG)
        fast = run_mars_job(wc.spec(), inp, strategy=ReduceStrategy.TR,
                            config=CFG, backend="fast")
        assert normalised(fast.output) == normalised(sim.output)
        assert fast.mode == sim.mode == "Mars"

    def test_br_still_rejected(self):
        wc = WordCount()
        inp = wc.generate("small", scale=0.1)
        with pytest.raises(FrameworkError, match="thread-level"):
            run_mars_job(wc.spec(), inp, strategy=ReduceStrategy.BR,
                         backend="fast")


class TestAutoMode:
    def test_fast_auto_routes_through_tuner(self):
        # 'auto' on the fast backend runs the same cost-model tuner as
        # the sim backend, so mode labels agree across backends and
        # the decision is auditable from the KernelStats extras.
        wc = WordCount()
        inp = wc.generate("small", scale=0.2, seed=7)
        res = run_job(wc.spec(), inp, mode="auto",
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend="fast")
        sim = run_job(wc.spec(), inp, mode="auto",
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend="sim")
        assert isinstance(res.mode, MemoryMode)
        assert res.mode is sim.mode
        assert res.map_stats.extra["tuner_choice"].startswith(
            res.mode.value + "/")

    def test_env_var_selects_backend(self, monkeypatch):
        wc = WordCount()
        inp = wc.generate("small", scale=0.2, seed=8)
        monkeypatch.setenv("REPRO_BACKEND", "fast")
        res = run_job(wc.spec(), inp, mode=MemoryMode.G,
                      strategy=ReduceStrategy.TR, config=CFG)
        # Fast-backend signature: no kernel cycles were simulated.
        assert res.timings.map == 0.0
        assert res.map_stats.extra.get("fast_records_in") == len(inp)
