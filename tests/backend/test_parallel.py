"""ParallelBackend: sharded multi-process execution.

The contract under test: output is *record-identical* to the fast
backend (same records, same order) for every driver — single-shot,
map-only, streamed, Mars — whether the pool engages or the tiny-input
fallback runs in-process, and the BR partial combine preserves both
the fold result and the value counts ``finalize`` receives.
"""

import os
import struct

import pytest

from repro.analysis.validation import outputs_match
from repro.backend import BACKENDS, ParallelBackend, get_backend
from repro.backend.parallel import WORKERS_ENV, default_workers
from repro.errors import FrameworkError
from repro.framework import (
    KeyValueSet,
    MapReduceSpec,
    MemoryMode,
    ReduceStrategy,
    run_job,
)
from repro.framework.host import shard_slices
from repro.framework.streaming import run_streamed_job
from repro.gpu import DeviceConfig
from repro.workloads import KMeans, WordCount

CFG = DeviceConfig.small(2)


def _pooled(workers: int = 2) -> ParallelBackend:
    """A backend that really shards: no tiny-input fallback."""
    return ParallelBackend(workers=workers, min_records=0)


def _wc(scale: float = 0.2):
    w = WordCount()
    inp = w.generate("small", seed=5, scale=scale)
    spec = w.spec_for_size("small", seed=5, scale=scale)
    return spec, inp


# ----------------------------------------------------------------------
# Registry and configuration
# ----------------------------------------------------------------------


class TestRegistry:
    def test_registered(self):
        assert BACKENDS["parallel"] is ParallelBackend
        assert isinstance(get_backend("parallel"), ParallelBackend)

    def test_worker_count_suffix(self):
        assert get_backend("parallel:3").workers == 3

    def test_bad_worker_count_suffix(self):
        with pytest.raises(FrameworkError):
            get_backend("parallel:lots")

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert default_workers() == 5
        assert ParallelBackend().workers == 5

    def test_env_variable_invalid(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(FrameworkError):
            default_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert ParallelBackend().workers == (os.cpu_count() or 1)

    def test_backend_env_selects_parallel(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel:2")
        assert get_backend(None).workers == 2

    def test_zero_workers_rejected(self):
        with pytest.raises(FrameworkError):
            ParallelBackend(workers=0)


# ----------------------------------------------------------------------
# Output identity with the fast backend
# ----------------------------------------------------------------------


class TestFastParity:
    @pytest.mark.parametrize("strategy", [ReduceStrategy.TR,
                                          ReduceStrategy.BR, None])
    def test_pooled_output_identical(self, strategy):
        spec, inp = _wc()
        kwargs = dict(mode=MemoryMode.SIO, strategy=strategy, config=CFG)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp, backend=_pooled(3), **kwargs)
        assert par.output == fast.output  # identical records, same order
        assert par.intermediate_count == fast.intermediate_count
        assert par.mode == fast.mode
        assert par.strategy == fast.strategy

    def test_fallback_output_identical(self):
        """Tiny inputs skip the pool but produce the same records."""
        spec, inp = _wc()
        backend = ParallelBackend(workers=4, min_records=10 ** 9)
        kwargs = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                      config=CFG)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp, backend=backend, **kwargs)
        assert par.output == fast.output

    def test_single_worker_never_pools(self):
        spec, inp = _wc()
        backend = ParallelBackend(workers=1, min_records=0)
        res = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend=backend)
        fast = run_job(spec, inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.TR, config=CFG,
                       backend="fast")
        assert res.output == fast.output

    def test_transfer_costs_match_fast(self):
        spec, inp = _wc()
        kwargs = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                      config=CFG)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp, backend=_pooled(2), **kwargs)
        assert par.timings.io_in == fast.timings.io_in
        assert par.timings.io_out == fast.timings.io_out
        assert par.timings.map == 0.0 and par.timings.reduce == 0.0

    def test_sharding_counters_reported(self):
        spec, inp = _wc()
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend=_pooled(2))
        assert par.map_stats.extra["parallel_shards"] == 2
        assert par.map_stats.extra["parallel_workers"] == 2

    def test_auto_mode(self):
        spec, inp = _wc()
        par = run_job(spec, inp, mode="auto", strategy=ReduceStrategy.TR,
                      config=CFG, backend=_pooled(2))
        fast = run_job(spec, inp, mode="auto", strategy=ReduceStrategy.TR,
                       config=CFG, backend="fast")
        # Both resolve 'auto' with the same cost-model tuner, so the
        # chosen mode matches and the output is backend-independent.
        assert isinstance(par.mode, MemoryMode)
        assert par.mode == fast.mode
        assert par.output == fast.output


# ----------------------------------------------------------------------
# BR partial combine
# ----------------------------------------------------------------------


def _mean_spec() -> MapReduceSpec:
    """BR workload whose finalize *uses the count*: integer mean.

    If partial combining dropped or double-counted values, the mean
    would come out wrong even though the sum survived.
    """

    def m(key, value, emit, const):
        emit(key.to_bytes(), value.to_bytes())

    def combine(a, b):
        return struct.pack("<Q", struct.unpack("<Q", a)[0]
                           + struct.unpack("<Q", b)[0])

    def finalize(key, acc, count):
        return key, struct.pack("<Q", struct.unpack("<Q", acc)[0] // count)

    def r(key, values, emit, const):
        vals = [struct.unpack("<Q", v.to_bytes())[0] for v in values]
        emit(key.to_bytes(), struct.pack("<Q", sum(vals) // len(vals)))

    return MapReduceSpec(name="mean", map_record=m, reduce_record=r,
                         combine=combine, finalize=finalize)


class TestPartialCombine:
    def test_combine_preserves_counts(self):
        spec = _mean_spec()
        inp = KeyValueSet()
        for i in range(300):
            inp.append(struct.pack("<I", i % 7), struct.pack("<Q", i))
        kwargs = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.BR,
                      config=CFG)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp, backend=_pooled(4), **kwargs)
        assert par.output == fast.output
        assert len(par.output) == 7

    def test_combine_shrinks_cross_process_traffic(self):
        """The shard summaries carry one accumulator per distinct key
        per shard, visible in the map stats."""
        spec, inp = _wc(scale=0.3)
        # Partial combining is a memory-store feature (a spilling job
        # ships plain pairs and folds fully in Reduce), so pin the
        # store: the suite also runs under REPRO_STORE=spill.
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.BR, config=CFG,
                      backend=_pooled(2), store="memory")
        combined = par.map_stats.extra["parallel_combined_out"]
        emitted = par.map_stats.extra["fast_records_out"]
        assert 0 < combined < emitted
        assert par.intermediate_count == emitted

    def test_no_combine_under_tr(self):
        spec, inp = _wc()
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend=_pooled(2))
        assert "parallel_combined_out" not in par.map_stats.extra

    def test_float_combine_within_tolerance(self):
        """Float BR combines regroup the fold; tolerance-equal only."""
        k = KMeans()
        inp = k.generate("small", seed=3, scale=0.25)
        spec = k.spec_for_seed(3)
        kwargs = dict(mode=MemoryMode.SIO, strategy=ReduceStrategy.BR,
                      config=CFG)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp, backend=_pooled(3), **kwargs)
        assert outputs_match(par.output, fast.output, float32_values=True)


# ----------------------------------------------------------------------
# Degenerate inputs (the PR 3 fuzzer's corners)
# ----------------------------------------------------------------------


class TestDegenerate:
    def _spec(self, map_fn, reduce_fn=None):
        return MapReduceSpec(name="degen", map_record=map_fn,
                             reduce_record=reduce_fn)

    def test_empty_input(self):
        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        res = run_job(self._spec(ident), KeyValueSet(), mode=MemoryMode.SIO,
                      config=CFG, backend=_pooled(4))
        assert len(res.output) == 0

    def test_empty_input_with_reduce(self):
        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        def count(key, values, emit, const):
            emit(key.to_bytes(), struct.pack("<I", len(values)))

        res = run_job(self._spec(ident, count), KeyValueSet(),
                      mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                      config=CFG, backend=_pooled(4))
        assert len(res.output) == 0

    def test_single_hot_key(self):
        """Every record lands in one group: the reduce range partition
        degenerates to a single non-empty range."""

        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        def total(key, values, emit, const):
            s = sum(int.from_bytes(v.to_bytes(), "little") for v in values)
            emit(key.to_bytes(), struct.pack("<I", s & 0xFFFFFFFF))

        inp = KeyValueSet()
        for i in range(64):
            inp.append(b"only", struct.pack("<I", i))
        spec = self._spec(ident, total)
        fast = run_job(spec, inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.TR, config=CFG,
                       backend="fast")
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG,
                      backend=_pooled(4))
        assert par.output == fast.output
        assert len(par.output) == 1

    def test_zero_output_map(self):
        def swallow(key, value, emit, const):
            pass

        inp = KeyValueSet()
        for i in range(40):
            inp.append(struct.pack("<I", i), b"x")
        res = run_job(self._spec(swallow), inp, mode=MemoryMode.SIO,
                      config=CFG, backend=_pooled(4))
        assert len(res.output) == 0

    def test_fewer_records_than_workers(self):
        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        inp = KeyValueSet([(b"a", b"1"), (b"b", b"2")])
        res = run_job(self._spec(ident), inp, mode=MemoryMode.SIO,
                      config=CFG, backend=_pooled(8))
        assert list(res.output) == [(b"a", b"1"), (b"b", b"2")]

    def test_bad_emit_type_surfaces(self):
        def bad(key, value, emit, const):
            emit("not-bytes", b"v")

        inp = KeyValueSet([(b"k", b"v")] * 8)
        with pytest.raises(FrameworkError):
            run_job(self._spec(bad), inp, mode=MemoryMode.SIO, config=CFG,
                    backend=_pooled(2))


# ----------------------------------------------------------------------
# Streamed and Mars drivers
# ----------------------------------------------------------------------


class TestOtherDrivers:
    def test_streamed_identical_to_fast(self):
        spec, inp = _wc(scale=0.3)
        kwargs = dict(strategy=ReduceStrategy.TR, n_batches=3, config=CFG)
        fast = run_streamed_job(spec, inp, backend="fast", **kwargs)
        par = run_streamed_job(spec, inp, backend=_pooled(2), **kwargs)
        assert par.job.output == fast.job.output
        assert len(par.batches) == len(fast.batches)
        for bf, bp in zip(fast.batches, par.batches):
            assert bf.records == bp.records
            assert bf.upload_cycles == bp.upload_cycles

    def test_streamed_br_skips_partial_combine(self):
        """Batch outputs are flattened between Map and Shuffle, so the
        streamed driver runs BR without shard accumulators — and still
        matches."""
        spec, inp = _wc(scale=0.3)
        kwargs = dict(strategy=ReduceStrategy.BR, n_batches=3, config=CFG)
        fast = run_streamed_job(spec, inp, backend="fast", **kwargs)
        par = run_streamed_job(spec, inp, backend=_pooled(2), **kwargs)
        assert par.job.output == fast.job.output

    def test_mars_identical_to_fast(self):
        from repro.mars.framework import run_mars_job

        spec, inp = _wc()
        fast = run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                            config=CFG, backend="fast")
        par = run_mars_job(spec, inp, strategy=ReduceStrategy.TR,
                           config=CFG, backend=_pooled(2))
        assert par.output == fast.output
        assert par.mode == fast.mode == "Mars"


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


class TestLifecycle:
    def test_pool_released_after_job(self):
        spec, inp = _wc()
        backend = _pooled(2)
        ctx_seen = {}
        orig_open = backend.open

        def spy_open(plan):
            ctx = orig_open(plan)
            ctx_seen["ctx"] = ctx
            return ctx

        backend.open = spy_open
        run_job(spec, inp, mode=MemoryMode.SIO, strategy=ReduceStrategy.TR,
                config=CFG, backend=backend)
        assert ctx_seen["ctx"].pool is None

    def test_pool_released_on_error(self):
        def boom(key, value, emit, const):
            raise RuntimeError("kernel panic")

        spec = MapReduceSpec(name="boom", map_record=boom)
        inp = KeyValueSet([(b"k", b"v")] * 32)
        backend = _pooled(2)
        ctx_seen = {}
        orig_open = backend.open

        def spy_open(plan):
            ctx = orig_open(plan)
            ctx_seen["ctx"] = ctx
            return ctx

        backend.open = spy_open
        with pytest.raises(RuntimeError):
            run_job(spec, inp, mode=MemoryMode.SIO, config=CFG,
                    backend=backend)
        assert ctx_seen["ctx"].pool is None

    def test_backend_reusable_across_jobs(self):
        spec, inp = _wc()
        backend = _pooled(2)
        for _ in range(2):
            res = run_job(spec, inp, mode=MemoryMode.SIO,
                          strategy=ReduceStrategy.TR, config=CFG,
                          backend=backend)
            assert len(res.output) > 0


# ----------------------------------------------------------------------
# shard_slices (unit; the property suite fuzzes it)
# ----------------------------------------------------------------------


class TestShardSlices:
    def test_covers_and_balances(self):
        slices = shard_slices(10, 3)
        assert slices == [(0, 4), (4, 7), (7, 10)]

    def test_fewer_records_than_shards(self):
        assert shard_slices(2, 8) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert shard_slices(0, 4) == []

    def test_bad_shard_count(self):
        with pytest.raises(ValueError):
            shard_slices(5, 0)
