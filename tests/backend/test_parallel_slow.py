"""Slow-tier parallel backend tests: medium inputs, worker sweeps.

Tier-1 (tests/backend/test_parallel.py) proves the mechanism on small
inputs; this tier proves it at the sizes the backend exists for, where
the pool genuinely engages (inputs far above ``DEFAULT_MIN_RECORDS``)
and across worker counts.
"""

import pytest

from repro.analysis.validation import outputs_match
from repro.backend import ParallelBackend
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.framework.streaming import run_streamed_job
from repro.workloads import KMeans, WordCount

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def wc_medium():
    w = WordCount()
    return (w.spec_for_size("medium", seed=0), w.generate("medium", seed=0))


@pytest.fixture(scope="module")
def wc_fast_tr(wc_medium):
    spec, inp = wc_medium
    return run_job(spec, inp, mode=MemoryMode.SIO,
                   strategy=ReduceStrategy.TR, backend="fast")


class TestMediumWordCount:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_sweep_identical(self, wc_medium, wc_fast_tr, workers):
        spec, inp = wc_medium
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR,
                      backend=ParallelBackend(workers=workers))
        assert par.output == wc_fast_tr.output
        assert par.intermediate_count == wc_fast_tr.intermediate_count

    def test_br_with_partial_combine_identical(self, wc_medium):
        spec, inp = wc_medium
        fast = run_job(spec, inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.BR, backend="fast")
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.BR,
                      backend=ParallelBackend(workers=4))
        assert par.output == fast.output  # integer sums: byte-exact
        combined = par.map_stats.extra["parallel_combined_out"]
        assert combined < par.intermediate_count

    def test_default_threshold_engages_pool(self, wc_medium):
        """Medium wordcount is far above DEFAULT_MIN_RECORDS, so a
        plain ParallelBackend(workers=2) must actually shard."""
        spec, inp = wc_medium
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR,
                      backend=ParallelBackend(workers=2))
        assert par.map_stats.extra["parallel_shards"] == 2

    def test_streamed_medium(self, wc_medium):
        spec, inp = wc_medium
        kwargs = dict(strategy=ReduceStrategy.TR, n_batches=4)
        fast = run_streamed_job(spec, inp, backend="fast", **kwargs)
        par = run_streamed_job(spec, inp,
                               backend=ParallelBackend(workers=2),
                               **kwargs)
        assert par.job.output == fast.job.output


class TestMediumKMeans:
    def test_br_float_combine_within_tolerance(self):
        k = KMeans()
        inp = k.generate("medium", seed=0)
        spec = k.spec_for_size("medium", seed=0)
        fast = run_job(spec, inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.BR, backend="fast")
        par = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.BR,
                      backend=ParallelBackend(workers=4))
        assert outputs_match(par.output, fast.output, float32_values=True)
        assert len(par.output) == len(fast.output)
