"""CLI robustness and the --backend flag on repro-trace / repro-bench.

Unknown workload / mode / strategy / backend names must exit with
code 2 and a message listing the valid choices — never a traceback.
"""

import json
import os

import pytest

from repro.analysis.cli import main as bench_main
from repro.obs.cli import main as trace_main


def _exit_code(excinfo) -> int:
    code = excinfo.value.code
    return code if isinstance(code, int) else 1


class TestTraceCli:
    def test_unknown_workload_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["nope"])
        assert _exit_code(e) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        for code in ("WC", "KM", "LR"):
            assert code in err

    def test_unknown_mode_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--mode", "XYZ"])
        assert _exit_code(e) == 2
        err = capsys.readouterr().err
        assert "unknown memory mode" in err
        assert "SIO" in err

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--strategy", "QR"])
        assert _exit_code(e) == 2

    def test_unknown_backend_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--backend", "cuda"])
        assert _exit_code(e) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_blocks_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--blocks", "x,y"])
        assert _exit_code(e) == 2

    def test_fast_backend_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "t"
        rc = trace_main([
            "WC", "--backend", "fast", "--scale", "0.2", "--mps", "2",
            "--out", str(out), "--quiet",
        ])
        assert rc == 0
        with open(out / "metrics.json", encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["backend"] == "fast"
        assert os.path.exists(out / "trace.json")

    def test_columnar_flag_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "c"
        rc = trace_main([
            "WC", "--columnar", "--scale", "0.2", "--mps", "2",
            "--out", str(out), "--quiet",
        ])
        assert rc == 0
        with open(out / "metrics.json", encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["backend"] == "columnar"

    def test_columnar_conflicts_with_sim_and_parallel(self, capsys):
        for backend in ("sim", "parallel"):
            with pytest.raises(SystemExit) as e:
                trace_main(["WC", "--columnar", "--backend", backend])
            assert _exit_code(e) == 2
            assert "--columnar" in capsys.readouterr().err

    @pytest.mark.parametrize("budget", ["1.5m", "0", "-1", "64q"])
    def test_bad_memory_budget_exits_2(self, budget, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--store", "spill",
                        "--memory-budget", budget])
        assert _exit_code(e) == 2
        assert "budget" in capsys.readouterr().err

    def test_bad_env_budget_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1.5m")
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--backend", "fast"])
        assert _exit_code(e) == 2
        assert "budget" in capsys.readouterr().err

    def test_bad_env_backend_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "parallel:0")
        with pytest.raises(SystemExit) as e:
            trace_main(["WC"])
        assert _exit_code(e) == 2
        assert "worker count" in capsys.readouterr().err

    def test_bad_env_workers_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "abc")
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--backend", "parallel"])
        assert _exit_code(e) == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err


class TestBenchCli:
    def test_unknown_workload_code_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            bench_main(["table1", "--workload", "WC,XX"])
        assert _exit_code(e) == 2
        err = capsys.readouterr().err
        assert "unknown workload code" in err
        assert "LR" in err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            bench_main(["fig99"])
        assert _exit_code(e) == 2

    def test_backend_rejected_for_timing_commands(self, capsys):
        rc = bench_main(["fig6", "--backend", "fast"])
        assert rc == 2
        assert "cycle-accurate" in capsys.readouterr().err

    def test_validate_under_fast_backend(self, capsys):
        rc = bench_main([
            "validate", "--workload", "LR,HG", "--scale", "0.25",
            "--backend", "fast",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "conformance" in out
        assert "FAIL" not in out

    def test_validate_under_columnar_backend(self, capsys):
        rc = bench_main([
            "validate", "--workload", "HG", "--scale", "0.2",
            "--columnar",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "conformance" in out
        assert "FAIL" not in out

    def test_columnar_conflicts_with_sim(self, capsys):
        rc = bench_main(["validate", "--columnar", "--backend", "sim"])
        assert rc == 2
        assert "--columnar" in capsys.readouterr().err

    def test_validate_bad_budget_exits_2(self, capsys):
        # parse_budget("1.5m") used to escape cmd_validate as a raw
        # traceback; it must be the documented exit-2 usage error.
        with pytest.raises(SystemExit) as e:
            bench_main(["validate", "--workload", "WC", "--store",
                        "spill", "--memory-budget", "1.5m"])
        assert _exit_code(e) == 2
        assert "budget" in capsys.readouterr().err

    def test_validate_bad_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            bench_main(["validate", "--workload", "WC", "--backend",
                        "parallel", "--workers", "0"])
        assert _exit_code(e) == 2
        assert "workers" in capsys.readouterr().err
