"""CLI robustness and the --backend flag on repro-trace / repro-bench.

Unknown workload / mode / strategy / backend names must exit with
code 2 and a message listing the valid choices — never a traceback.
"""

import json
import os

import pytest

from repro.analysis.cli import main as bench_main
from repro.obs.cli import main as trace_main


def _exit_code(excinfo) -> int:
    code = excinfo.value.code
    return code if isinstance(code, int) else 1


class TestTraceCli:
    def test_unknown_workload_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["nope"])
        assert _exit_code(e) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        for code in ("WC", "KM", "LR"):
            assert code in err

    def test_unknown_mode_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--mode", "XYZ"])
        assert _exit_code(e) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--strategy", "QR"])
        assert _exit_code(e) == 2

    def test_unknown_backend_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--backend", "cuda"])
        assert _exit_code(e) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_blocks_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            trace_main(["WC", "--blocks", "x,y"])
        assert _exit_code(e) == 2

    def test_fast_backend_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "t"
        rc = trace_main([
            "WC", "--backend", "fast", "--scale", "0.2", "--mps", "2",
            "--out", str(out), "--quiet",
        ])
        assert rc == 0
        with open(out / "metrics.json", encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert metrics["backend"] == "fast"
        assert os.path.exists(out / "trace.json")


class TestBenchCli:
    def test_unknown_workload_code_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            bench_main(["table1", "--workload", "WC,XX"])
        assert _exit_code(e) == 2
        err = capsys.readouterr().err
        assert "unknown workload code" in err
        assert "LR" in err

    def test_unknown_command_exits_2(self, capsys):
        with pytest.raises(SystemExit) as e:
            bench_main(["fig99"])
        assert _exit_code(e) == 2

    def test_backend_rejected_for_timing_commands(self, capsys):
        rc = bench_main(["fig6", "--backend", "fast"])
        assert rc == 2
        assert "cycle-accurate" in capsys.readouterr().err

    def test_validate_under_fast_backend(self, capsys):
        rc = bench_main([
            "validate", "--workload", "LR,HG", "--scale", "0.25",
            "--backend", "fast",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "conformance" in out
        assert "FAIL" not in out
