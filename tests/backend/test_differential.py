"""Cross-backend differential suite: fast vs sim vs parallel vs oracle.

For every workload x memory mode x reduce strategy, the fast
functional backend must produce output record-identical to the
cycle-accurate simulator and to the CPU reference oracle (normalised
ordering — atomic appends legitimately permute records; float32
tolerance where summation order differs, exactly as the conformance
matrix does).  The sharded parallel backend must match the fast
backend *exactly* — same records, same order — except for float BR
combines, where per-shard partial combining regroups the fold and the
usual float32 tolerance applies.

A fourth executor rides along: the fast backend with the spill store
forced down to a tiny budget, so every case's shuffle goes through
sorted runs and the k-way merge.  Its contract is the strictest —
byte-identical to the memory-store fast run, records *and* order.

A fifth executor is the columnar fast backend
(``FastBackend(columnar=True)``): batched array Map/Shuffle/Reduce
with each workload's ``map_batch``/``reduce_batch`` kernels and
per-batch scalar fallback everywhere else.  Non-float workloads must
be byte-identical to the scalar fast run (records *and* order); the
float workloads (KM, SS, LR) match under the usual float32 tolerance.

The seventh and eighth executors are the distributed backend
(``dist:2`` — coordinator + socket workers, GFS-style splits forced
small so every case really schedules multiple tasks) and ``dist:2``
with the spill store at the same tiny budget.  Dist ships plain pairs
(no partial combine), so its contract is the strictest of all the
multi-process executors: byte-identical to the fast backend for
*every* workload, float BR folds included.
"""

import pytest

from repro.analysis.validation import outputs_match
from repro.backend import DistributedBackend, FastBackend, ParallelBackend
from repro.cpu_ref import reference_job
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig
from repro.workloads import ALL_WORKLOADS, EXTRA_WORKLOADS

CFG = DeviceConfig.small(2)

#: Generation scale per workload code — keeps the 8 x 5 x strategies
#: sim sweep tractable while still exercising multi-block grids.
SCALE = {"WC": 0.3, "MM": 0.5, "SM": 0.3, "II": 0.3, "KM": 0.25,
         "SS": 0.5, "HG": 0.2, "LR": 0.25}

WORKLOADS = [cls() for cls in (*ALL_WORKLOADS, *EXTRA_WORKLOADS)]

#: Spill budget forced low enough that every differential case with a
#: Reduce phase actually writes and merges runs.
SPILL_BUDGET = 512

#: Map-split size for the dist executors: small enough that every
#: case cuts multiple tasks per worker (real scheduling, not one
#: task per worker).
DIST_SPLIT = 256


def _dist_backend():
    return DistributedBackend(workers=2, min_records=0,
                              split_bytes=DIST_SPLIT)


def _float_vals(code: str) -> bool:
    return code in ("KM", "SS", "LR")


def _cases():
    for w in WORKLOADS:
        strategies = [None]
        if w.has_reduce:
            strategies = [ReduceStrategy.TR, ReduceStrategy.BR]
        for mode in MemoryMode:
            for strat in strategies:
                if strat is ReduceStrategy.BR and mode is MemoryMode.GT:
                    continue  # illegal combination by design
                yield w, mode, strat


@pytest.mark.parametrize(
    "workload,mode,strategy",
    list(_cases()),
    ids=lambda p: getattr(p, "code", None) or getattr(p, "value", str(p)),
)
def test_fast_matches_sim_and_oracle(workload, mode, strategy):
    inp = workload.generate("small", seed=11, scale=SCALE[workload.code])
    spec = workload.spec_for_size("small", seed=11,
                                  scale=SCALE[workload.code])
    kwargs = dict(mode=mode, strategy=strategy, config=CFG,
                  threads_per_block=64)
    sim = run_job(spec, inp, backend="sim", **kwargs)
    fast = run_job(spec, inp, backend="fast", **kwargs)
    par = run_job(spec, inp, backend=ParallelBackend(workers=2,
                                                    min_records=0),
                  **kwargs)
    ref = reference_job(spec, inp, strategy)
    fv = _float_vals(workload.code)

    assert outputs_match(fast.output, sim.output, float32_values=fv)
    assert outputs_match(fast.output, ref, float32_values=fv)
    # Metadata parity: same shape of result, not just same records.
    assert fast.spec_name == sim.spec_name
    assert fast.mode == sim.mode
    assert fast.strategy == sim.strategy
    assert fast.intermediate_count == sim.intermediate_count
    assert len(fast.output) == len(sim.output)

    # Parallel: byte-identical to fast, except float BR partial
    # combines (fold regrouping) which match under float32 tolerance.
    if fv and strategy is ReduceStrategy.BR:
        assert outputs_match(par.output, fast.output, float32_values=True)
    else:
        assert par.output == fast.output
    assert par.intermediate_count == fast.intermediate_count
    assert par.mode == fast.mode and par.strategy == fast.strategy

    # Spill store under a tiny budget: same backend, different
    # intermediate policy — must be byte-identical, no tolerance.
    spill = run_job(spec, inp, backend="fast", store="spill",
                    memory_budget=SPILL_BUDGET, **kwargs)
    assert spill.output == fast.output
    assert spill.intermediate_count == fast.intermediate_count
    if strategy is not None:
        assert spill.reduce_stats.extra.get("spill_runs", 0) > 0

    # Columnar fast backend: byte-identical for integer workloads,
    # float32 tolerance for the float ones (the batch kernels preserve
    # scalar accumulation order, so in practice they are bit-equal).
    col = run_job(spec, inp, backend=FastBackend(columnar=True), **kwargs)
    if fv:
        assert outputs_match(col.output, fast.output, float32_values=True)
    else:
        assert col.output == fast.output
    assert col.intermediate_count == fast.intermediate_count
    assert col.mode == fast.mode and col.strategy == fast.strategy

    # Columnar + spill: the array shuffle routed through sorted runs
    # must reproduce the columnar memory-store run byte for byte.
    col_spill = run_job(spec, inp, backend=FastBackend(columnar=True),
                        store="spill", memory_budget=SPILL_BUDGET, **kwargs)
    assert col_spill.output == col.output
    if strategy is not None:
        assert col_spill.reduce_stats.extra.get("spill_runs", 0) > 0

    # Distributed backend: plain pairs over the wire, first-result-wins
    # dedupe — byte-identical to fast for every workload, no float
    # tolerance anywhere.
    dist = run_job(spec, inp, backend=_dist_backend(), **kwargs)
    assert dist.output == fast.output
    assert dist.intermediate_count == fast.intermediate_count
    assert dist.mode == fast.mode and dist.strategy == fast.strategy

    # Distributed + spill: worker-side run files merged coordinator-side
    # must reproduce the fast spill run byte for byte.
    dist_spill = run_job(spec, inp, backend=_dist_backend(),
                         store="spill", memory_budget=SPILL_BUDGET,
                         **kwargs)
    assert dist_spill.output == fast.output
    if strategy is not None:
        assert dist_spill.reduce_stats.extra.get("spill_runs", 0) > 0


class TestDegenerateInputs:
    """Backend parity on the inputs the fuzzer flagged as the risky
    corners: empty input, one hot key, zero-output map.  The parallel
    backend runs with the tiny-input fallback disabled so the pool
    path itself faces the degenerate shapes."""

    def _spec(self, map_fn, reduce_fn=None):
        from repro.framework.api import MapReduceSpec

        return MapReduceSpec(name="degen", map_record=map_fn,
                             reduce_record=reduce_fn)

    def _run_both(self, spec, inp, strategy=None):
        kwargs = dict(mode=MemoryMode.SIO, strategy=strategy, config=CFG,
                      threads_per_block=64)
        sim = run_job(spec, inp, backend="sim", check=True, **kwargs)
        fast = run_job(spec, inp, backend="fast", **kwargs)
        par = run_job(spec, inp,
                      backend=ParallelBackend(workers=4, min_records=0),
                      **kwargs)
        assert par.output == fast.output
        spill = run_job(spec, inp, backend="fast", store="spill",
                        memory_budget=64, **kwargs)
        assert spill.output == fast.output
        par_spill = run_job(spec, inp,
                            backend=ParallelBackend(workers=4,
                                                    min_records=0),
                            store="spill", memory_budget=64, **kwargs)
        assert par_spill.output == fast.output
        col = run_job(spec, inp, backend=FastBackend(columnar=True),
                      **kwargs)
        assert col.output == fast.output
        col_spill = run_job(spec, inp, backend=FastBackend(columnar=True),
                            store="spill", memory_budget=64, **kwargs)
        assert col_spill.output == fast.output
        dist = run_job(spec, inp, backend=_dist_backend(), **kwargs)
        assert dist.output == fast.output
        dist_spill = run_job(spec, inp, backend=_dist_backend(),
                             store="spill", memory_budget=64, **kwargs)
        assert dist_spill.output == fast.output
        return sim, fast

    def test_empty_input(self):
        from repro.framework.records import KeyValueSet

        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        sim, fast = self._run_both(self._spec(ident), KeyValueSet())
        assert len(sim.output) == len(fast.output) == 0
        assert outputs_match(fast.output, sim.output)
        assert sim.check_report is not None and sim.check_report.ok

    def test_all_records_one_key(self):
        """LR-style: every record reduces into a single key set."""
        from repro.framework.records import KeyValueSet

        def ident(key, value, emit, const):
            emit(key.to_bytes(), value.to_bytes())

        def total(key, values, emit, const):
            s = sum(int.from_bytes(v.to_bytes(), "little") for v in values)
            emit(key.to_bytes(), (s & 0xFFFFFFFF).to_bytes(4, "little"))

        inp = KeyValueSet()
        for i in range(50):
            inp.append(b"only", i.to_bytes(4, "little"))
        sim, fast = self._run_both(self._spec(ident, total), inp,
                                   strategy=ReduceStrategy.TR)
        ref = reference_job(self._spec(ident, total), inp, ReduceStrategy.TR)
        assert outputs_match(fast.output, sim.output)
        assert outputs_match(sim.output, ref)
        assert len(sim.output) == 1
        assert sim.check_report.ok

    def test_zero_output_map(self):
        from repro.framework.records import KeyValueSet

        def swallow(key, value, emit, const):
            pass

        inp = KeyValueSet()
        for i in range(20):
            inp.append(i.to_bytes(4, "little"), b"x")
        sim, fast = self._run_both(self._spec(swallow), inp)
        assert len(sim.output) == len(fast.output) == 0
        assert sim.check_report.ok
