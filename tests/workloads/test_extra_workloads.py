"""Tests for the extra (beyond-Table-I) workloads: SS, HG and LR."""

import struct

import numpy as np
import pytest

from repro.cpu_ref import normalised, reference_job
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig
from repro.workloads import (
    EXTRA_WORKLOADS,
    Histogram,
    LinearRegression,
    SimilarityScore,
)

CFG = DeviceConfig.small(2)
MODES = list(MemoryMode)


class TestRegistry:
    def test_extras_registered(self):
        codes = [cls().code for cls in EXTRA_WORKLOADS]
        assert codes == ["SS", "HG", "LR"]

    def test_sizes_defined(self):
        for cls in EXTRA_WORKLOADS:
            assert set(cls().sizes()) == {"small", "medium", "large"}


class TestSimilarityScore:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_matches_oracle(self, mode):
        ss = SimilarityScore()
        inp = ss.generate("small", seed=1)
        spec = ss.spec_for_size("small", seed=1)
        ref = normalised(reference_job(spec, inp))
        res = run_job(spec, inp, mode=mode, config=CFG, threads_per_block=64)
        assert normalised(res.output) == ref

    def test_scores_are_cosine_similarities(self):
        ss = SimilarityScore()
        inp = ss.generate("small", seed=2)
        spec = ss.spec_for_size("small", seed=2)
        res = run_job(spec, inp, mode=MemoryMode.SIO, config=CFG,
                      threads_per_block=64)
        want = ss.expected_scores(inp, "small", seed=2)
        for key, val in res.output:
            a, b = struct.unpack("<II", key)
            got = struct.unpack("<f", val)[0]
            assert got == pytest.approx(want[(a, b)], rel=1e-4)
            assert 0.0 <= got <= 1.0 + 1e-6  # positive vectors

    def test_gt_caches_shared_vectors(self):
        """Vectors are shared across pairs: the texture cache must see
        real reuse (the MM/SS-style GT benefit)."""
        from repro.analysis.figures import run_map_kernel

        st = run_map_kernel(SimilarityScore(), MemoryMode.GT, size="small",
                            config=CFG)
        assert st.texture_hit_rate > 0.3


class TestHistogram:
    @pytest.mark.parametrize("mode", [MemoryMode.G, MemoryMode.SIO],
                             ids=["G", "SIO"])
    def test_counts_exact(self, mode):
        hg = Histogram()
        inp = hg.generate("small", seed=3, scale=0.25)
        res = run_job(hg.spec(), inp, mode=mode,
                      strategy=ReduceStrategy.TR, config=CFG)
        want = hg.expected_histogram(inp)
        got = {
            struct.unpack("<I", k)[0]: struct.unpack("<Q", v)[0]
            for k, v in res.output
        }
        assert got == want
        total_pixels = sum(len(v) for v in inp.values)
        assert sum(got.values()) == total_pixels

    def test_br_matches_tr(self):
        hg = Histogram()
        inp = hg.generate("small", seed=4, scale=0.2)
        tr = run_job(hg.spec(), inp, mode=MemoryMode.G,
                     strategy=ReduceStrategy.TR, config=CFG)
        br = run_job(hg.spec(), inp, mode=MemoryMode.SI,
                     strategy=ReduceStrategy.BR, config=CFG)
        tr_q = {k: struct.unpack("<Q", v)[0] for k, v in tr.output}
        br_q = {k: struct.unpack("<Q", v)[0] for k, v in br.output}
        assert tr_q == br_q

    def test_few_large_keysets_favour_br(self):
        """HG's 64 buckets x thousands of values is BR territory,
        like KMeans (Section IV-E)."""
        from repro.analysis.figures import fig5_reduce_sweep

        hg = Histogram()
        tr = fig5_reduce_sweep(hg, ReduceStrategy.TR, size="small",
                               config=DeviceConfig.gtx280(),
                               block_sizes=(128,), modes=(MemoryMode.G,))
        br = fig5_reduce_sweep(hg, ReduceStrategy.BR, size="small",
                               config=DeviceConfig.gtx280(),
                               block_sizes=(128,), modes=(MemoryMode.G,))
        assert br.series["G"][0] < tr.series["G"][0]

    def test_map_combiner_bounds_emissions(self):
        """The per-row combiner caps emissions at BUCKETS per record."""
        hg = Histogram()
        inp = hg.generate("small", seed=5, scale=0.1)
        res = run_job(hg.spec(), inp, mode=MemoryMode.G, config=CFG,
                      strategy=None)
        assert len(res.output) <= len(inp) * 64
        assert len(res.output) >= len(inp)  # every row hits >=1 bucket


class TestLinearRegression:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_tr_matches_oracle(self, mode):
        lr = LinearRegression()
        inp = lr.generate("small", seed=6, scale=0.25)
        spec = lr.spec()
        ref = normalised(reference_job(spec, inp, ReduceStrategy.TR))
        res = run_job(spec, inp, mode=mode, strategy=ReduceStrategy.TR,
                      config=CFG, threads_per_block=64)
        assert normalised(res.output) == ref

    def test_fit_recovers_ground_truth_line(self):
        lr = LinearRegression()
        inp = lr.generate("small", seed=7)
        res = run_job(lr.spec(), inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.TR, config=CFG)
        assert len(res.output) == 1
        slope, intercept = struct.unpack("<ff", res.output[0][1])
        want_slope, want_intercept = lr.expected_fit(inp)
        assert slope == pytest.approx(want_slope, abs=1e-3)
        assert intercept == pytest.approx(want_intercept, abs=1e-3)

    def test_br_matches_tr_within_float_tolerance(self):
        """The single giant group: BR folds pairwise, TR walks the
        whole list — both must land on the same fitted line."""
        lr = LinearRegression()
        inp = lr.generate("small", seed=8, scale=0.5)
        tr = run_job(lr.spec(), inp, mode=MemoryMode.G,
                     strategy=ReduceStrategy.TR, config=CFG)
        br = run_job(lr.spec(), inp, mode=MemoryMode.SI,
                     strategy=ReduceStrategy.BR, config=CFG)
        got_tr = np.array(struct.unpack("<ff", tr.output[0][1]))
        got_br = np.array(struct.unpack("<ff", br.output[0][1]))
        assert np.allclose(got_tr, got_br, rtol=1e-3, atol=1e-4)

    def test_single_intermediate_key(self):
        """Every Map emission shares one key — the degenerate Shuffle
        case (mirror image of II's many tiny groups)."""
        lr = LinearRegression()
        inp = lr.generate("small", seed=9, scale=0.1)
        res = run_job(lr.spec(), inp, mode=MemoryMode.G, strategy=None,
                      config=CFG)
        assert len({k for k, _ in res.output}) == 1
        assert res.intermediate_count == len(inp)
