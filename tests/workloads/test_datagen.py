"""Tests for the synthetic data generators (Table II statistics)."""

import numpy as np
import pytest

from repro.workloads.datagen import (
    clustered_vectors,
    html_chunks,
    match_lines,
    random_matrices,
    text_lines,
)


class TestTextLines:
    def test_volume(self):
        lines = text_lines(10_000, seed=1)
        assert sum(map(len, lines)) >= 10_000

    def test_line_length_statistics(self):
        """Table II: WC input key 32.44 / 2.59."""
        lines = text_lines(100_000, seed=2)
        lens = np.array([len(l) for l in lines], dtype=float)
        assert abs(lens.mean() - 32.44) < 4.0

    def test_word_length_statistics(self):
        """Table II: intermediate key 5.46 / 2.53."""
        lines = text_lines(100_000, seed=3)
        words = [w for l in lines for w in l.split(b" ") if w]
        lens = np.array([len(w) for w in words], dtype=float)
        assert abs(lens.mean() - 5.46) < 1.5

    def test_zipf_skew(self):
        """Most frequent word much more common than the median."""
        lines = text_lines(50_000, seed=4)
        from collections import Counter

        counts = Counter(w for l in lines for w in l.split(b" ") if w)
        freqs = sorted(counts.values(), reverse=True)
        assert freqs[0] > 10 * freqs[len(freqs) // 2]

    def test_deterministic(self):
        assert text_lines(5000, seed=7) == text_lines(5000, seed=7)
        assert text_lines(5000, seed=7) != text_lines(5000, seed=8)


class TestMatchLines:
    def test_match_ratio(self):
        """Table II: SM Map ratio 3.83:1."""
        lines = match_lines(200_000, b"needle", seed=1)
        hits = sum(1 for l in lines if b"needle" in l)
        ratio = len(lines) / hits
        assert 3.0 < ratio < 4.8

    def test_line_lengths(self):
        lines = match_lines(100_000, b"kw", seed=2)
        lens = np.array([len(l) for l in lines], dtype=float)
        assert abs(lens.mean() - 44.52) < 4.0

    def test_keyword_intact(self):
        lines = match_lines(20_000, b"xyzzy", seed=3)
        assert any(l.count(b"xyzzy") >= 1 for l in lines)


class TestHtmlChunks:
    def test_link_ratio(self):
        """Table II: II Map ratio 7.94:1."""
        chunks = html_chunks(300_000, seed=1)
        hits = sum(1 for c in chunks if b'<a href="' in c)
        ratio = len(chunks) / hits
        assert 5.5 < ratio < 11.0

    def test_heavy_tail(self):
        """Table II: value 63.9 / 123.2 — stddev far above the mean."""
        chunks = html_chunks(300_000, seed=2)
        lens = np.array([len(c) for c in chunks], dtype=float)
        assert lens.std() > lens.mean()

    def test_urls_parseable(self):
        chunks = html_chunks(100_000, seed=3)
        for c in chunks:
            pos = c.find(b'<a href="')
            if pos >= 0:
                end = c.find(b'"', pos + 9)
                assert end > pos + 9  # a closing quote exists
                assert c[pos + 9:end].startswith(b"http://")


class TestVectors:
    def test_shapes_and_dtype(self):
        vecs, init = clustered_vectors(100, dim=8, k=4, seed=1)
        assert vecs.shape == (100, 8)
        assert init.shape == (4, 8)
        assert vecs.dtype == np.float32

    def test_vectors_cluster_around_centres(self):
        vecs, init = clustered_vectors(2000, dim=8, k=4, seed=2, spread=0.05)
        # Each vector is close to SOME initial centroid.
        d = np.linalg.norm(vecs[:, None, :] - init[None, :, :], axis=2)
        assert np.median(d.min(axis=1)) < 0.5

    def test_deterministic(self):
        a, _ = clustered_vectors(50, seed=9)
        b, _ = clustered_vectors(50, seed=9)
        assert np.array_equal(a, b)


class TestMatrices:
    def test_shapes(self):
        a, b = random_matrices(12, seed=1)
        assert a.shape == b.shape == (12, 12)
        assert a.dtype == np.float32

    def test_range(self):
        a, b = random_matrices(16, seed=2)
        assert np.abs(a).max() <= 1.0
