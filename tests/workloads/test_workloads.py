"""Correctness tests for the five workloads against the CPU oracle.

Every workload's Map (and Reduce, where present) runs on the simulated
GPU under every applicable memory mode and must reproduce the CPU
reference output exactly (KMeans: to float32 tolerance, since record
order — and hence summation order — legitimately differs between
modes).
"""

import struct

import numpy as np
import pytest

from repro.cpu_ref import normalised, reference_job
from repro.framework import MemoryMode, ReduceStrategy, run_job
from repro.gpu import DeviceConfig
from repro.workloads import (
    ALL_WORKLOADS,
    InvertedIndex,
    KMeans,
    MatrixMultiplication,
    StringMatch,
    WordCount,
)

CFG = DeviceConfig.small(2)
MODES = list(MemoryMode)


def approx_equal_kv(got, want, float_vals=False):
    got, want = normalised(got), normalised(want)
    if not float_vals:
        return got == want
    if len(got) != len(want):
        return False
    for (gk, gv), (wk, wv) in zip(got, want):
        if gk != wk or len(gv) != len(wv):
            return False
        a = np.frombuffer(gv, dtype="<f4")
        b = np.frombuffer(wv, dtype="<f4")
        if not np.allclose(a, b, rtol=1e-4, atol=1e-5):
            return False
    return True


class TestWorkloadMetadata:
    def test_all_five_present(self):
        codes = [cls().code for cls in ALL_WORKLOADS]
        assert codes == ["WC", "MM", "SM", "II", "KM"]

    def test_three_sizes_each(self):
        for cls in ALL_WORKLOADS:
            sizes = cls().sizes()
            assert set(sizes) == {"small", "medium", "large"}

    def test_reduce_flags_match_table2(self):
        """Table II: only WC and KM have a Reduce phase."""
        has = {cls().code: cls().has_reduce for cls in ALL_WORKLOADS}
        assert has == {"WC": True, "MM": False, "SM": False, "II": False,
                       "KM": True}

    def test_table1_rows(self):
        row = WordCount().table1_row()
        assert "Word Count" in row[0]
        assert "16MB" in row[1]


class TestWordCount:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_map_reduce_matches_oracle(self, mode):
        wc = WordCount()
        inp = wc.generate("small", seed=1, scale=0.2)
        spec = wc.spec()
        ref = reference_job(spec, inp, ReduceStrategy.TR)
        res = run_job(spec, inp, mode=mode, strategy=ReduceStrategy.TR,
                      config=CFG, threads_per_block=128)
        assert approx_equal_kv(res.output, ref)

    def test_counts_are_correct(self):
        wc = WordCount()
        inp = wc.generate("small", seed=2, scale=0.1)
        total_words = sum(
            len([w for w in k.split(b" ") if w]) for k in inp.keys
        )
        res = run_job(wc.spec(), inp, mode=MemoryMode.G,
                      strategy=ReduceStrategy.TR, config=CFG)
        counted = sum(struct.unpack("<I", v)[0] for v in res.output.values)
        assert counted == total_words

    def test_br_matches_tr(self):
        wc = WordCount()
        inp = wc.generate("small", seed=3, scale=0.1)
        tr = run_job(wc.spec(), inp, mode=MemoryMode.G,
                     strategy=ReduceStrategy.TR, config=CFG)
        br = run_job(wc.spec(), inp, mode=MemoryMode.G,
                     strategy=ReduceStrategy.BR, config=CFG)
        assert normalised(tr.output) == normalised(br.output)


class TestStringMatch:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_matches_oracle(self, mode):
        sm = StringMatch()
        inp = sm.generate("small", seed=1, scale=0.2)
        spec = sm.spec()
        ref = reference_job(spec, inp)
        res = run_job(spec, inp, mode=mode, config=CFG, threads_per_block=128)
        assert approx_equal_kv(res.output, ref)

    def test_positions_are_exact(self):
        sm = StringMatch()
        inp = sm.generate("small", seed=2, scale=0.1)
        res = run_job(sm.spec(), inp, mode=MemoryMode.SIO, config=CFG)
        lines = {struct.unpack("<I", v)[0]: k for k, v in inp}
        for line_id_b, pos_b in res.output:
            line_id = struct.unpack("<I", line_id_b)[0]
            pos = struct.unpack("<I", pos_b)[0]
            assert lines[line_id][pos:pos + 6] == b"needle"

    def test_match_count_plausible(self):
        sm = StringMatch()
        inp = sm.generate("small", seed=3, scale=0.3)
        res = run_job(sm.spec(), inp, mode=MemoryMode.G, config=CFG)
        ratio = len(inp) / max(1, len(res.output))
        assert 2.5 < ratio < 6.0  # Table II: 3.83:1


class TestInvertedIndex:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_matches_oracle(self, mode):
        ii = InvertedIndex()
        inp = ii.generate("small", seed=1, scale=0.2)
        spec = ii.spec()
        ref = reference_job(spec, inp)
        res = run_job(spec, inp, mode=mode, config=CFG, threads_per_block=128)
        assert approx_equal_kv(res.output, ref)

    def test_links_start_with_http(self):
        ii = InvertedIndex()
        inp = ii.generate("small", seed=2, scale=0.2)
        res = run_job(ii.spec(), inp, mode=MemoryMode.SI, config=CFG)
        assert len(res.output) > 0
        assert all(k.startswith(b"http://") for k in res.output.keys)


class TestKMeans:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_tr_matches_oracle(self, mode):
        km = KMeans()
        inp = km.generate("small", seed=1, scale=0.5)
        spec = km.spec_for_seed(1)
        ref = reference_job(spec, inp, ReduceStrategy.TR)
        res = run_job(spec, inp, mode=mode, strategy=ReduceStrategy.TR,
                      config=CFG, threads_per_block=128)
        assert approx_equal_kv(res.output, ref, float_vals=True)

    def test_br_matches_oracle(self):
        km = KMeans()
        inp = km.generate("small", seed=2, scale=0.5)
        spec = km.spec_for_seed(2)
        ref = reference_job(spec, inp, ReduceStrategy.BR)
        res = run_job(spec, inp, mode=MemoryMode.SIO,
                      strategy=ReduceStrategy.BR, config=CFG,
                      threads_per_block=128)
        assert approx_equal_kv(res.output, ref, float_vals=True)

    def test_centroids_move_toward_truth(self):
        """One MapReduce iteration improves centroid positions."""
        km = KMeans(k=4)
        inp = km.generate("small", seed=3, scale=0.5)
        spec = km.spec_for_seed(3)
        res = run_job(spec, inp, mode=MemoryMode.G,
                      strategy=ReduceStrategy.TR, config=CFG)
        vecs = np.array([np.frombuffer(v, dtype="<f4") for v in inp.values])
        old = np.frombuffer(spec.const_bytes, dtype="<f4").reshape(-1, 8)
        new = np.array(
            [np.frombuffer(v, dtype="<f4") for v in res.output.values]
        )
        # New centroids are means of real points: inside the data hull.
        assert new.min() >= vecs.min() - 1e-5
        assert new.max() <= vecs.max() + 1e-5
        assert len(new) <= len(old)


class TestMatrixMultiplication:
    @pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
    def test_matches_numpy(self, mode):
        mm = MatrixMultiplication()
        inp = mm.generate("small", seed=1)
        spec = mm.spec_for(16, seed=1)
        res = run_job(spec, inp, mode=mode, config=CFG, threads_per_block=64)
        want = mm.expected_product("small", seed=1)
        got = np.zeros((16, 16), dtype=np.float64)
        for k, v in res.output:
            i, j = struct.unpack("<II", k)
            got[i, j] = struct.unpack("<f", v)[0]
        assert np.allclose(got, want, rtol=1e-4)

    def test_stage_flags(self):
        spec = MatrixMultiplication().spec_for(16)
        assert spec.stage_values is False
        assert spec.const_bytes is not None
