"""Tests for the Mars two-pass baseline."""

import struct

import numpy as np
import pytest

from repro.errors import FrameworkError
from repro.framework import (
    DeviceRecordSet,
    KeyValueSet,
    MemoryMode,
    ReduceStrategy,
    run_job,
    shuffle,
)
from repro.framework.api import MapReduceSpec
from repro.gpu import Device, DeviceConfig
from repro.mars import (
    device_exclusive_scan,
    mars_map_phase,
    mars_reduce_phase,
    multi_scan,
    run_mars_job,
)

CFG = DeviceConfig.small(2)


def word_map(key, value, emit, const):
    for w in key.to_bytes().split(b" "):
        if w:
            emit(w, struct.pack("<I", 1))


def word_reduce(key, values, emit, const):
    emit(key.to_bytes(), struct.pack("<I", sum(v.u32() for v in values)))


def make_spec():
    return MapReduceSpec(name="mars_wc", map_record=word_map,
                         reduce_record=word_reduce)


def make_input():
    lines = [b"aa bb aa", b"cc aa", b"bb bb cc dd"]
    return KeyValueSet([(ln, struct.pack("<I", i)) for i, ln in enumerate(lines)])


class TestScan:
    def test_exclusive_scan_matches_numpy(self):
        sizes = np.array([5, 0, 3, 7, 1])
        res = device_exclusive_scan(sizes, CFG)
        assert list(res.offsets) == [0, 5, 5, 8, 15]
        assert res.total == 16
        assert res.cycles > 0

    def test_empty(self):
        res = device_exclusive_scan(np.array([], dtype=np.int64), CFG)
        assert res.total == 0

    def test_multi_scan_sums_cycles(self):
        arrays = [np.ones(100, dtype=np.int64)] * 3
        results, cycles = multi_scan(arrays, CFG)
        assert len(results) == 3
        assert cycles == pytest.approx(sum(r.cycles for r in results))


class TestMapPhase:
    def test_functional_output(self):
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        inter, stats = mars_map_phase(dev, make_spec(), d_in,
                                      threads_per_block=64)
        got = sorted(inter.download())
        assert got.count((b"aa", struct.pack("<I", 1))) == 3
        assert len(got) == 9

    def test_no_atomics_anywhere(self):
        """Mars's defining property: the two-pass scheme needs no
        atomic operations at all."""
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        _, stats = mars_map_phase(dev, make_spec(), d_in, threads_per_block=64)
        assert stats.atomics_global == 0
        assert stats.atomics_shared == 0

    def test_two_passes_cost_more_than_one(self):
        """Mars pays roughly the Map input/compute cost twice."""
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        _, stats = mars_map_phase(dev, make_spec(), d_in, threads_per_block=64)
        # Both passes read every record: global read ops happen twice.
        assert stats.extra.get("mars_scan_cycles", 0) > 0

    def test_output_offsets_are_dense(self):
        """The scan must produce gap-free packing."""
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        inter, _ = mars_map_phase(dev, make_spec(), d_in, threads_per_block=64)
        kvs = inter.download()
        assert sum(len(k) for k in kvs.keys) == inter.keys_size


class TestReducePhase:
    def test_reduce_sums(self):
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        inter, _ = mars_map_phase(dev, make_spec(), d_in, threads_per_block=64)
        grouped = shuffle(dev.gmem, inter, CFG).grouped
        final, stats = mars_reduce_phase(dev, make_spec(), grouped,
                                         threads_per_block=64)
        got = dict(list(final.download()))
        assert got[b"aa"] == struct.pack("<I", 3)
        assert got[b"bb"] == struct.pack("<I", 3)
        assert got[b"dd"] == struct.pack("<I", 1)
        assert stats.atomics_global == 0

    def test_reduce_needs_tr_fn(self):
        dev = Device(CFG)
        d_in = DeviceRecordSet.upload(dev.gmem, make_input())
        inter, _ = mars_map_phase(dev, make_spec(), d_in, threads_per_block=64)
        grouped = shuffle(dev.gmem, inter, CFG).grouped
        spec = MapReduceSpec(name="x", map_record=word_map)
        with pytest.raises(FrameworkError):
            mars_reduce_phase(dev, spec, grouped)


class TestEndToEnd:
    def test_matches_framework_output(self):
        inp = make_input()
        spec = make_spec()
        mars = run_mars_job(spec, inp, strategy=ReduceStrategy.TR, config=CFG,
                            threads_per_block=64)
        ours = run_job(spec, inp, mode=MemoryMode.SIO,
                       strategy=ReduceStrategy.TR, config=CFG,
                       threads_per_block=64)
        assert sorted(zip(mars.output.keys, mars.output.values)) == sorted(
            zip(ours.output.keys, ours.output.values)
        )

    def test_map_only(self):
        res = run_mars_job(make_spec(), make_input(), config=CFG,
                           threads_per_block=64)
        assert len(res.output) == 9
        assert res.mode == "Mars"

    def test_br_rejected(self):
        with pytest.raises(FrameworkError, match="thread-level"):
            run_mars_job(make_spec(), make_input(),
                         strategy=ReduceStrategy.BR, config=CFG)

    def test_phase_breakdown(self):
        # backend pinned: kernel cycle counts are the simulator's.
        res = run_mars_job(make_spec(), make_input(),
                           strategy=ReduceStrategy.TR, config=CFG,
                           threads_per_block=64, backend="sim")
        t = res.timings
        assert t.io_in > 0 and t.map > 0 and t.shuffle > 0 and t.reduce > 0

    def test_shared_shuffle_and_io_with_framework(self):
        """Mars and the framework share host transfers + shuffle
        (Section IV-F): identical inputs give identical io_in and
        near-identical shuffle cost."""
        inp = make_input()
        spec = make_spec()
        mars = run_mars_job(spec, inp, strategy=ReduceStrategy.TR, config=CFG,
                            threads_per_block=64)
        ours = run_job(spec, inp, mode=MemoryMode.G,
                       strategy=ReduceStrategy.TR, config=CFG,
                       threads_per_block=64)
        assert mars.timings.io_in == ours.timings.io_in
        assert mars.timings.shuffle == pytest.approx(ours.timings.shuffle)
