"""Direct unit tests for the Mars count pass."""

import struct

import pytest

from repro.framework import DeviceRecordSet, KeyValueSet, MemoryMode
from repro.framework.api import MapReduceSpec
from repro.framework.map_engine import build_map_runtime
from repro.gpu import Device, DeviceConfig
from repro.mars.count_pass import CountArrays, MarsCountRuntime, mars_map_count_kernel

CFG = DeviceConfig.small(2)


def var_map(key, value, emit, const):
    """Record i emits i % 3 records of i-dependent sizes."""
    i = value.u32()
    for j in range(i % 3):
        emit(key.to_bytes() * (j + 1), bytes(j))


def run_count(inp):
    dev = Device(CFG)
    d_in = DeviceRecordSet.upload(dev.gmem, inp)
    spec = MapReduceSpec(name="cnt", map_record=var_map)
    rt = build_map_runtime(dev, spec, MemoryMode.G, d_in,
                           threads_per_block=64)
    crt = MarsCountRuntime(rt=rt, counts=CountArrays.zeros(d_in.count),
                           counts_addr=dev.gmem.alloc(12 * d_in.count))
    stats = dev.launch(mars_map_count_kernel, grid=rt.grid, block=64,
                       smem_bytes=rt.layout.smem_bytes, args=(crt,))
    return dev, crt, stats


def make_input(n=50):
    return KeyValueSet(
        [(b"k%02d" % i, struct.pack("<I", i)) for i in range(n)]
    )


class TestMapCount:
    def test_counts_match_direct_execution(self):
        inp = make_input()
        dev, crt, _ = run_count(inp)
        for i, (k, v) in enumerate(inp):
            n_emits = i % 3
            assert crt.counts.records[i] == n_emits
            expected_kb = sum(len(k) * (j + 1) for j in range(n_emits))
            expected_vb = sum(j for j in range(n_emits))
            assert crt.counts.key_bytes[i] == expected_kb
            assert crt.counts.val_bytes[i] == expected_vb

    def test_counts_written_to_device_memory(self):
        inp = make_input(12)
        dev, crt, _ = run_count(inp)
        for i in range(12):
            assert dev.gmem.read_u32(crt.counts_addr + 12 * i) == (
                crt.counts.key_bytes[i]
            )
            assert dev.gmem.read_u32(crt.counts_addr + 12 * i + 8) == (
                crt.counts.records[i]
            )

    def test_count_pass_emits_nothing(self):
        """The first pass must not touch the output buffers."""
        inp = make_input(20)
        dev, crt, _ = run_count(inp)
        assert crt.rt.out.as_record_set().count == 0

    def test_count_pass_uses_no_atomics(self):
        inp = make_input(30)
        _, _, stats = run_count(inp)
        assert stats.atomics_global == 0

    def test_count_pass_pays_input_and_compute(self):
        """The two-pass tax: counting reads the input like the real
        pass does."""
        inp = make_input(40)
        _, _, stats = run_count(inp)
        assert stats.global_reads > 0
        assert stats.compute_ops > 0

    def test_zeros_helper(self):
        c = CountArrays.zeros(5)
        assert list(c.key_bytes) == [0] * 5
        assert c.records.dtype.kind == "i"
