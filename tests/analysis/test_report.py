"""Tests for the text renderers (tables, sweeps, breakdowns)."""

import pytest

from repro.analysis.figures import (
    EndToEndRow,
    MapSweepResult,
    ReduceSweepResult,
    SpeedupRow,
    YieldRow,
)
from repro.analysis.report import (
    _fmt,
    render_end_to_end,
    render_map_sweep,
    render_reduce_sweep,
    render_speedups,
    render_table,
    render_yield,
)
from repro.framework.job import PhaseTimings


class TestFormatting:
    def test_fmt_scales(self):
        assert _fmt(None).strip() == "-"
        assert _fmt(12.3).strip() == "12.3"
        assert _fmt(12_345).strip() == "12.3K"
        assert _fmt(3_200_000).strip() == "3.20M"

    def test_render_table_alignment(self):
        text = render_table(["a", "long-header"], [["x", "y"], ["zz", "w"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows padded to equal width


class TestRenderers:
    def test_map_sweep(self):
        res = MapSweepResult(workload="WC", size="small", block_sizes=(64, 128))
        res.series = {"G": [100.0, 90.0], "SIO": [50.0, None]}
        text = render_map_sweep(res)
        assert "WC" in text and "64" in text and "-" in text

    def test_reduce_sweep(self):
        res = ReduceSweepResult(workload="KM", strategy="BR", size="small",
                                block_sizes=(64,))
        res.series = {"G": [10.0], "GT": [None]}
        text = render_reduce_sweep(res)
        assert "KM-BR" in text

    def test_end_to_end(self):
        rows = [EndToEndRow("WC", "small", "Mars",
                            PhaseTimings(io_in=1, map=2, shuffle=3,
                                         reduce=4, io_out=5))]
        text = render_end_to_end(rows)
        assert "Mars" in text and "total" in text

    def test_speedups(self):
        rows = [SpeedupRow("WC", "map", {"G": 0.5, "SIO": 2.5})]
        text = render_speedups(rows)
        assert "0.50x" in text and "2.50x" in text

    def test_yield(self):
        rows = [YieldRow("II", 128, 1000.0, 900.0)]
        text = render_yield(rows)
        assert "+10.0%" in text

    def test_yield_improvement_math(self):
        r = YieldRow("WC", 64, 200.0, 220.0)
        assert r.improvement_pct == pytest.approx(-10.0)
