"""Tests for derived kernel metrics."""

import pytest

from repro.analysis.figures import run_map_kernel
from repro.analysis.metrics import KernelMetrics, compare_modes, derive_metrics
from repro.framework.modes import MemoryMode
from repro.gpu import Device, DeviceConfig
from repro.gpu.stats import KernelStats
from repro.workloads import WordCount


class TestDeriveMetrics:
    def test_empty_stats(self):
        m = derive_metrics(KernelStats(), DeviceConfig.gtx280())
        assert m.bandwidth_utilisation == 0.0
        assert m.bytes_per_transaction == 0.0
        assert m.stall_breakdown == {}

    def test_bandwidth_bounded_by_peak(self):
        st = KernelStats(cycles=100.0, global_transactions=10 ** 6,
                         global_bytes=64 * 10 ** 6)
        m = derive_metrics(st, DeviceConfig.gtx280())
        assert m.bandwidth_utilisation == 1.0

    def test_occupancy(self):
        st = KernelStats(cycles=1000.0, threads_per_block=256, blocks_per_mp=4)
        m = derive_metrics(st, DeviceConfig.gtx280())
        # 8 warps/block x 4 blocks = 32 of 32 max resident warps.
        assert m.occupancy == 1.0

    def test_render_contains_fields(self):
        st = KernelStats(cycles=5000.0, instructions=100, polls=10,
                         atomics_global=20, global_transactions=50,
                         global_bytes=2000)
        st.stall("atomic", 100.0)
        text = derive_metrics(st, DeviceConfig.gtx280()).render()
        assert "bandwidth" in text and "atomics/kcycle" in text
        assert "atomic" in text

    def test_real_kernel_sane_ranges(self):
        st = run_map_kernel(WordCount(), MemoryMode.SIO, size="small",
                            config=DeviceConfig.small(2))
        m = derive_metrics(st, DeviceConfig.small(2))
        assert 0 <= m.bandwidth_utilisation <= 1
        assert 0 < m.occupancy <= 1
        assert m.bytes_per_transaction > 0
        assert abs(sum(m.stall_breakdown.values()) - 1.0) < 1e-6


class TestCompareModes:
    def test_comparison_story(self):
        """G shows high atomic pressure; SIO shows polls instead."""
        cfg = DeviceConfig.gtx280()
        metrics = {}
        for mode in (MemoryMode.G, MemoryMode.SIO):
            st = run_map_kernel(WordCount(), mode, size="small", config=cfg)
            metrics[mode.value] = derive_metrics(st, cfg)
        table = compare_modes(metrics, reference="G")
        assert "SIO" in table and "vs G" in table
        assert metrics["G"].atomics_per_kcycle > metrics["SIO"].atomics_per_kcycle
        assert metrics["SIO"].poll_fraction > metrics["G"].poll_fraction

    def test_missing_reference_falls_back(self):
        m = KernelMetrics(cycles=10, bandwidth_utilisation=0,
                          bytes_per_transaction=0, occupancy=0,
                          atomics_per_kcycle=0, poll_fraction=0,
                          stall_breakdown={})
        table = compare_modes({"SIO": m}, reference="G")
        assert "SIO" in table
