"""Sensitivity tests: the headline conclusions survive calibration
uncertainty in the timing model."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityResult,
    sweep_mp_count,
    sweep_timing_knob,
)
from repro.framework.modes import MemoryMode
from repro.gpu import DeviceConfig
from repro.workloads import InvertedIndex, WordCount


class TestSweepMachinery:
    def test_sweep_produces_points(self):
        res = sweep_timing_knob(
            WordCount(), "atomic_service_cycles", (80.0, 160.0),
            size="small", scale=0.2, base=DeviceConfig.small(2),
        )
        assert len(res.points) == 2
        assert set(res.points[0].cycles) == {"G", "SIO"}
        assert "sensitivity" in res.render()

    def test_ratio_helpers(self):
        res = SensitivityResult(knob="x", workload="WC", modes=("G", "SIO"))
        from repro.analysis.sensitivity import SweepPoint

        res.points = [SweepPoint(1.0, {"G": 200.0, "SIO": 100.0}),
                      SweepPoint(2.0, {"G": 300.0, "SIO": 100.0})]
        assert res.ratios("SIO", "G") == [(1.0, 2.0), (2.0, 3.0)]
        assert res.conclusion_stable("SIO", "G")
        assert not res.conclusion_stable("G", "SIO")


class TestHeadlineRobustness:
    def test_wc_sio_beats_g_across_atomic_costs(self):
        """The paper's core claim holds whether same-address atomics
        cost 80 or 640 cycles on GT200."""
        res = sweep_timing_knob(
            WordCount(), "atomic_service_cycles", (80.0, 160.0, 320.0, 640.0),
            size="medium",
        )
        print("\n" + res.render())
        assert res.conclusion_stable("SIO", "G", threshold=1.3)

    def test_ii_si_beats_g_across_latency(self):
        """II's staged-input win is latency-driven: check 300-700
        cycles (the paper's own global-latency range)."""
        res = sweep_timing_knob(
            InvertedIndex(), "global_latency", (300.0, 500.0, 700.0),
            modes=(MemoryMode.G, MemoryMode.SI), size="small",
        )
        print("\n" + res.render())
        assert res.conclusion_stable("SI", "G", threshold=1.3)

    def test_wc_conclusion_stable_across_mp_counts(self):
        """Simulating 8 vs 30 MPs must not flip the winner."""
        res = sweep_mp_count(WordCount(), counts=(4, 15, 30), size="small")
        print("\n" + res.render())
        assert res.conclusion_stable("SIO", "G", threshold=1.2)

    def test_wc_sio_beats_g_across_mlp(self):
        """Robust to the record-scan memory-parallelism assumption."""
        res = sweep_timing_knob(
            WordCount(), "memory_parallelism", (1, 4, 8),
            size="small",
        )
        print("\n" + res.render())
        assert res.conclusion_stable("SIO", "G", threshold=1.2)
