"""Tests for the table/figure runners and renderers."""

import pytest

from repro.analysis import figures, report, tables
from repro.framework.modes import MemoryMode, ReduceStrategy
from repro.gpu import DeviceConfig
from repro.workloads import ALL_WORKLOADS, KMeans, StringMatch, WordCount

CFG = DeviceConfig.small(2)
SCALE = 0.1  # keep analysis tests quick


class TestTables:
    def test_table1_has_five_rows(self):
        rows = tables.table1([cls() for cls in ALL_WORKLOADS])
        assert len(rows) == 5
        assert rows[0][0].startswith("Word Count")

    def test_table2_wc_statistics(self):
        row = tables.measure_table2_row(WordCount(), "small", scale=0.3)
        assert abs(row.input_key.mean - 32.44) < 5
        assert row.input_val.mean == 4.0
        assert 1 / row.map_ratio > 3  # several words per line
        assert row.reduce_ratio > 2

    def test_table2_sm_no_reduce(self):
        row = tables.measure_table2_row(StringMatch(), "small", scale=0.3)
        assert row.reduce_ratio is None
        assert row.inter_key is None
        assert row.output_key.mean == 4.0

    def test_map_ratio_format(self):
        assert tables.map_ratio_str(3.83) == "3.83:1"
        assert tables.map_ratio_str(1 / 4.98) == "1:4.98"

    def test_render_table2(self):
        row = tables.measure_table2_row(StringMatch(), "small", scale=0.2)
        text = report.render_table2([row])
        assert "paper" in text and "ours" in text and "SM" in text


class TestFig5Runners:
    def test_map_sweep_structure(self):
        res = figures.fig5_map_sweep(
            StringMatch(), size="small", block_sizes=(64, 128),
            modes=(MemoryMode.G, MemoryMode.SIO), config=CFG, scale=SCALE,
        )
        assert set(res.series) == {"G", "SIO"}
        assert all(len(s) == 2 for s in res.series.values())
        assert all(v and v > 0 for s in res.series.values() for v in s)
        text = report.render_map_sweep(res)
        assert "SM" in text

    def test_sweep_helpers(self):
        res = figures.fig5_map_sweep(
            StringMatch(), size="small", block_sizes=(64,),
            modes=(MemoryMode.G, MemoryMode.SIO), config=CFG, scale=SCALE,
        )
        best = res.best_mode(64)
        assert best in ("G", "SIO")
        assert res.speedup("SIO", "G", 64) == pytest.approx(
            res.series["G"][0] / res.series["SIO"][0]
        )

    def test_reduce_sweep_gt_br_is_none(self):
        res = figures.fig5_reduce_sweep(
            WordCount(), ReduceStrategy.BR, size="small",
            block_sizes=(64,), modes=(MemoryMode.G, MemoryMode.GT),
            config=CFG, scale=SCALE,
        )
        assert res.series["GT"] == [None]  # texture x BR impossible
        assert res.series["G"][0] > 0
        report.render_reduce_sweep(res)  # renders the None as '-'


class TestFig6And7:
    def test_end_to_end_rows(self):
        rows = figures.fig6_end_to_end(
            StringMatch(), sizes=("small",), config=CFG, scale=SCALE,
        )
        systems = [r.system for r in rows]
        assert systems[0] == "Mars"
        assert "SIO" in systems
        assert all(r.timings.total > 0 for r in rows)
        text = report.render_end_to_end(rows)
        assert "Mars" in text

    def test_speedup_rows(self):
        rows = figures.fig7_speedup_over_mars(
            WordCount(), size="small", config=CFG, scale=SCALE,
        )
        phases = {r.phase for r in rows}
        assert phases == {"map", "reduce"}
        map_row = next(r for r in rows if r.phase == "map")
        assert set(map_row.speedups) == {"G", "GT", "SI", "SO", "SIO"}
        assert all(v > 0 for v in map_row.speedups.values())
        report.render_speedups(rows)


class TestFig8:
    def test_yield_rows(self):
        rows = figures.fig8_yield_sweep(
            WordCount(), size="small", block_sizes=(128, 256),
            config=CFG, scale=SCALE,
        )
        assert len(rows) == 2
        for r in rows:
            assert r.cycles_spin > 0 and r.cycles_yield > 0
            assert -50 < r.improvement_pct < 90
        report.render_yield(rows)


class TestCli:
    def test_cli_table1(self, capsys):
        from repro.analysis.cli import main

        assert main(["table1", "--workload", "WC"]) == 0
        out = capsys.readouterr().out
        assert "Word Count" in out

    def test_cli_fig7(self, capsys):
        from repro.analysis.cli import main

        assert main(["fig7", "--workload", "SM", "--size", "small",
                     "--scale", "0.1", "--mps", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup over Mars" in out
