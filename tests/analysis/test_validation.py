"""Tests for the conformance-validation module."""

import pytest

from repro.analysis.validation import (
    ValidationReport,
    outputs_match,
    validate_all,
    validate_workload,
)
from repro.framework import KeyValueSet
from repro.gpu import DeviceConfig
from repro.workloads import Histogram, KMeans, StringMatch, WordCount

CFG = DeviceConfig.small(2)


class TestOutputsMatch:
    def test_exact(self):
        a = KeyValueSet([(b"k", b"v")])
        b = KeyValueSet([(b"k", b"v")])
        assert outputs_match(a, b)

    def test_order_insensitive(self):
        a = KeyValueSet([(b"a", b"1"), (b"b", b"2")])
        b = KeyValueSet([(b"b", b"2"), (b"a", b"1")])
        assert outputs_match(a, b)

    def test_float_tolerance(self):
        import numpy as np

        va = np.array([1.0, 2.0], dtype="<f4").tobytes()
        vb = np.array([1.0 + 5e-8, 2.0], dtype="<f4").tobytes()
        a = KeyValueSet([(b"k", va)])
        b = KeyValueSet([(b"k", vb)])
        assert outputs_match(a, b, float32_values=True)
        assert not outputs_match(
            KeyValueSet([(b"k", va)]),
            KeyValueSet([(b"k", np.array([9.0, 2.0], dtype="<f4").tobytes())]),
            float32_values=True,
        )

    def test_length_mismatch(self):
        assert not outputs_match(
            KeyValueSet([(b"k", b"v")]), KeyValueSet()
        )


class TestValidateWorkload:
    def test_stringmatch_all_modes_pass(self):
        rep = validate_workload(StringMatch(), size="small", scale=0.15,
                                config=CFG)
        assert rep.passed
        assert len(rep.cases) == 5  # map-only x 5 modes
        assert "PASS" in rep.render()

    def test_wordcount_full_matrix(self):
        rep = validate_workload(WordCount(), size="small", scale=0.1,
                                config=CFG)
        # TR x 5 + BR x 4 (GT x BR illegal).
        assert len(rep.cases) == 9
        assert rep.passed, rep.render()

    def test_kmeans_uses_float_tolerance(self):
        rep = validate_workload(KMeans(), size="small", scale=0.4, config=CFG)
        assert rep.passed, rep.render()

    def test_validate_all_aggregates(self):
        rep = validate_all([StringMatch(), Histogram()], size="small",
                           scale=0.1, config=CFG)
        codes = {c.workload for c in rep.cases}
        assert codes == {"SM", "HG"}
        ok, total = rep.counts
        assert ok == total

    def test_report_render_failures(self):
        rep = ValidationReport()
        from repro.analysis.validation import ValidationCase

        rep.cases.append(ValidationCase("WC", "G", "TR", False, "boom"))
        text = rep.render()
        assert "FAIL" in text and "boom" in text
        assert not rep.passed
